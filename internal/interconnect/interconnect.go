// Package interconnect implements McPAT's on-chip communication models:
// NoC routers (input buffers, virtual-channel and switch arbiters, and a
// crossbar), point-to-point repeated links, shared buses, and flat
// crossbars (the style of Niagara's PCX/CPX core-to-cache crossbar).
//
// Per-flit/per-transfer energies are reported in Energy.Read; router
// buffer writes are folded into the per-flit traversal energy.
package interconnect

import (
	"fmt"
	"math"

	"mcpat/internal/array"
	"mcpat/internal/circuit"
	"mcpat/internal/power"
	"mcpat/internal/tech"
)

// RouterConfig describes one NoC router.
type RouterConfig struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool

	FlitBits        int // payload width
	Ports           int // in = out ports (5 for a 2D mesh)
	VirtualChannels int // per input port
	BuffersPerVC    int // flit slots per VC

	Clock float64 // Hz; used only for minimum-cycle checking (0 = skip)
}

// Router is a synthesized NoC router with per-flit energies.
type Router struct {
	power.PAT

	// Component breakdown (per router).
	Buffers  power.PAT
	Crossbar power.PAT
	Arbiters power.PAT

	cfg RouterConfig
}

// NewRouter synthesizes a router. Energy.Read is the energy for one flit
// to traverse the router (buffer write + buffer read + switch arbitration
// + crossbar traversal).
func NewRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("interconnect: router requires a technology node")
	}
	if cfg.FlitBits <= 0 || cfg.Ports <= 1 {
		return nil, fmt.Errorf("interconnect: invalid router geometry (flit=%d ports=%d)", cfg.FlitBits, cfg.Ports)
	}
	if cfg.VirtualChannels <= 0 {
		cfg.VirtualChannels = 1
	}
	if cfg.BuffersPerVC <= 0 {
		cfg.BuffersPerVC = 4
	}
	c := circuit.NewCtx(cfg.Tech, cfg.Dev, cfg.LongChannel)

	// --- Input buffers: one small RAM per input port. -----------------
	buf, err := array.New(array.Config{
		Name:      "router.buffer",
		Tech:      cfg.Tech,
		Periph:    cfg.Dev,
		Cell:      cfg.Dev,
		Entries:   cfg.VirtualChannels * cfg.BuffersPerVC,
		EntryBits: cfg.FlitBits,
		CellKind:  array.DFF,
		RdPorts:   1,
		WrPorts:   1,
	})
	if err != nil {
		return nil, err
	}
	bufPAT := buf.PAT
	bufPAT.Area *= float64(cfg.Ports)
	bufPAT.Static = bufPAT.Static.Scale(float64(cfg.Ports))

	// --- Crossbar: Ports x Ports, FlitBits wide. -----------------------
	xbar := crossbarPAT(c, cfg.Ports, cfg.Ports, cfg.FlitBits)

	// --- Arbiters: VC allocation + switch allocation. -------------------
	arb := arbiterPAT(c, cfg.Ports*cfg.VirtualChannels, 2) // two allocation stages

	per := power.PAT{
		Energy: power.Energy{
			Read: buf.Energy.Write + buf.Energy.Read + xbar.Energy.Read + arb.Energy.Read,
		},
		Static: bufPAT.Static.Add(xbar.Static).Add(arb.Static),
		Area:   bufPAT.Area + xbar.Area + arb.Area,
		Delay:  math.Max(buf.AccessTime, xbar.Delay) + arb.Delay,
	}
	per.Cycle = math.Max(per.Delay/3, 6*c.FO4()) // 3-stage pipelined router

	return &Router{
		PAT:      per,
		Buffers:  bufPAT,
		Crossbar: xbar,
		Arbiters: arb,
		cfg:      cfg,
	}, nil
}

// crossbarPAT models a matrix crossbar of nIn x nOut ports, w bits wide,
// built from tri-state crosspoint drivers over a wire matrix whose
// dimensions follow from the port count and wire pitch.
func crossbarPAT(c circuit.Ctx, nIn, nOut, w int) power.PAT {
	n := c.Node
	wire := n.Wire(tech.Aggressive, tech.Global)
	pitch := wire.Pitch

	// Physical extent of the wire matrix.
	width := float64(nOut) * float64(w) * pitch
	height := float64(nIn) * float64(w) * pitch

	wmin := n.MinWidthN()
	drvW := 8 * wmin // crosspoint tri-state driver size

	// One flit transfer switches one input row and one output column per
	// bit: the input wire sees nOut crosspoint loads, the output wire
	// sees nIn drain loads.
	cInWire := width*wire.CapPerM + float64(nOut)*drvW*c.Dev.CgPerW
	cOutWire := height*wire.CapPerM + float64(nIn)*drvW*c.Dev.CjPerW
	ePerBit := c.SwitchE(cInWire+cOutWire) + c.SwitchE(c.InvCin(drvW))
	energy := float64(w) * ePerBit

	delay := 0.69*(wire.ResPerM*width)*(cInWire/2) + c.InvDelay(drvW, cOutWire)

	// Leakage: one driver per crosspoint per bit.
	crosspoints := float64(nIn * nOut * w)
	sub := c.Dev.Ioff(crosspoints*drvW/2, crosspoints*drvW/2, n.Temperature) * c.Vdd()
	gate := c.Dev.Ig(crosspoints*drvW) * c.Vdd()

	return power.PAT{
		Energy: power.Energy{Read: energy},
		Static: power.Static{Sub: sub, Gate: gate},
		Area:   width * height,
		Delay:  delay,
	}
}

// arbiterPAT models matrix arbiters with r requestors across the given
// number of allocation stages.
func arbiterPAT(c circuit.Ctx, r, stages int) power.PAT {
	if r < 2 {
		r = 2
	}
	n := c.Node
	wmin := n.MinWidthN()
	// Matrix arbiter: r^2 priority cells of ~4 gates each.
	cells := float64(r * r)
	cCell := 4 * 2 * wmin * c.Dev.CgPerW
	energy := float64(stages) * float64(r) * c.SwitchE(cCell) // one row fires per grant
	delay := float64(stages) * (2 + math.Log2(float64(r))) * 0.5 * c.FO4()
	totalW := cells * 4 * 3 * wmin * float64(stages)
	sub := c.Dev.Ioff(totalW/2, totalW/2, n.Temperature) * c.Vdd()
	gate := c.Dev.Ig(totalW) * c.Vdd()
	area := cells * 4 * 30 * n.Feature * n.Feature * float64(stages)
	return power.PAT{
		Energy: power.Energy{Read: energy},
		Static: power.Static{Sub: sub, Gate: gate},
		Area:   area,
		Delay:  delay,
	}
}

// LinkConfig describes a point-to-point NoC link.
type LinkConfig struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool
	Projection  tech.Projection

	FlitBits int
	Length   float64 // m
	Clock    float64 // Hz; >0 pipelines the link to the cycle time
}

// Link is a synthesized repeated (and possibly pipelined) link. Energy.Read
// is the energy to move one flit across the link assuming a 50% bit
// transition probability.
type Link struct {
	power.PAT
	Stages int // pipeline stages
}

// NewLink builds the link model.
func NewLink(cfg LinkConfig) (*Link, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("interconnect: link requires a technology node")
	}
	if cfg.FlitBits <= 0 || cfg.Length < 0 {
		return nil, fmt.Errorf("interconnect: invalid link (flit=%d len=%g)", cfg.FlitBits, cfg.Length)
	}
	c := circuit.NewCtx(cfg.Tech, cfg.Dev, cfg.LongChannel)
	w := cfg.Tech.Wire(cfg.Projection, tech.Global)
	cycle := 0.0
	if cfg.Clock > 0 {
		cycle = 1 / cfg.Clock
	}
	res, ff, stages := c.PipelineWire(w, cfg.Length, cycle)

	bits := float64(cfg.FlitBits)
	eFlit := bits * (0.5*res.EnergyPerBit + float64(stages-1)*(ff.EnergyClk+0.5*ff.EnergyData))
	sub := bits*res.SubLeak + bits*float64(stages-1)*ff.SubLeak
	gate := bits*res.GateLeak + bits*float64(stages-1)*ff.GateLeak
	area := bits*res.Area + bits*float64(stages-1)*ff.Area

	return &Link{
		PAT: power.PAT{
			Energy: power.Energy{Read: eFlit},
			Static: power.Static{Sub: sub, Gate: gate},
			Area:   area,
			Delay:  res.Delay,
		},
		Stages: stages,
	}, nil
}

// BusConfig describes a shared multi-drop bus connecting n agents over a
// total physical span.
type BusConfig struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool

	Bits   int     // bus width
	Length float64 // total bus span (m)
	Agents int     // number of attached agents (drivers/receivers)
	Clock  float64 // Hz (for pipelining/minimum cycle; 0 = unconstrained)

	// LowSwing selects differential low-swing signaling for the bus
	// wires: several-fold lower transfer energy at higher latency, the
	// option McPAT applies to long wide buses.
	LowSwing bool
}

// NewBus models a repeated shared bus plus its central arbiter.
// Energy.Read is the energy of one bus transfer (all Bits, 50% toggle).
func NewBus(cfg BusConfig) (*Link, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("interconnect: bus requires a technology node")
	}
	if cfg.Bits <= 0 || cfg.Agents < 2 {
		return nil, fmt.Errorf("interconnect: invalid bus (bits=%d agents=%d)", cfg.Bits, cfg.Agents)
	}
	c := circuit.NewCtx(cfg.Tech, cfg.Dev, cfg.LongChannel)
	w := cfg.Tech.Wire(tech.Aggressive, tech.Global)
	var res circuit.WireResult
	if cfg.LowSwing {
		res = c.LowSwingWire(w, cfg.Length)
	} else {
		res = c.RepeatedWire(w, cfg.Length)
	}

	// Each agent adds a receiver + tri-state driver load along the span.
	wmin := cfg.Tech.MinWidthN()
	agentCap := float64(cfg.Agents) * (c.InvCin(4*wmin) + 8*wmin*c.Dev.CjPerW)
	eAgent := c.SwitchE(agentCap)

	bits := float64(cfg.Bits)
	arb := arbiterPAT(c, cfg.Agents, 1)
	eTransfer := bits*(0.5*res.EnergyPerBit+0.5*eAgent) + arb.Energy.Read

	sub := bits*res.SubLeak + arb.Static.Sub
	gate := bits*res.GateLeak + arb.Static.Gate
	area := bits*res.Area + arb.Area

	return &Link{
		PAT: power.PAT{
			Energy: power.Energy{Read: eTransfer},
			Static: power.Static{Sub: sub, Gate: gate},
			Area:   area,
			Delay:  res.Delay + arb.Delay,
		},
		Stages: 1,
	}, nil
}

// CrossbarConfig describes a flat crossbar interconnect (Niagara's
// PCX/CPX style) between nIn sources and nOut destinations. SpanLength is
// the physical wire run between an agent and the central switch (roughly
// a third of the chip side for a Niagara-style floorplan); each port also
// carries a small queue of QueueDepth flits.
type CrossbarConfig struct {
	Tech        *tech.Node
	Dev         tech.DeviceType
	LongChannel bool

	InPorts, OutPorts int
	Bits              int
	SpanLength        float64 // m; 0 = switch matrix only
	QueueDepth        int     // per-port FIFO entries; 0 selects 8
}

// NewCrossbar models the flat crossbar. Energy.Read is the energy of one
// transfer through the crossbar: span wire in, port queue write+read,
// switch matrix, span wire out.
func NewCrossbar(cfg CrossbarConfig) (*Link, error) {
	if cfg.Tech == nil {
		return nil, fmt.Errorf("interconnect: crossbar requires a technology node")
	}
	if cfg.InPorts < 1 || cfg.OutPorts < 1 || cfg.Bits <= 0 {
		return nil, fmt.Errorf("interconnect: invalid crossbar (%dx%d, %d bits)", cfg.InPorts, cfg.OutPorts, cfg.Bits)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 8
	}
	c := circuit.NewCtx(cfg.Tech, cfg.Dev, cfg.LongChannel)
	pat := crossbarPAT(c, cfg.InPorts, cfg.OutPorts, cfg.Bits)
	arb := arbiterPAT(c, cfg.InPorts, 1)

	// Span wires: one inbound and one outbound run per transfer.
	var spanE, spanSub, spanGate, spanArea, spanDelay float64
	if cfg.SpanLength > 0 {
		w := cfg.Tech.Wire(tech.Aggressive, tech.Global)
		res := c.RepeatedWire(w, cfg.SpanLength)
		bits := float64(cfg.Bits)
		ports := float64(cfg.InPorts + cfg.OutPorts)
		spanE = 2 * bits * 0.5 * res.EnergyPerBit
		spanSub = res.SubLeak * bits * ports
		spanGate = res.GateLeak * bits * ports
		spanArea = res.Area * bits * ports
		spanDelay = res.Delay
	}

	// Per-port FIFOs.
	q, err := array.New(array.Config{
		Name: "xbar.queue", Tech: cfg.Tech, Periph: cfg.Dev, Cell: cfg.Dev,
		LongChannel: cfg.LongChannel,
		Entries:     cfg.QueueDepth, EntryBits: cfg.Bits,
		CellKind: array.DFF, RdPorts: 1, WrPorts: 1,
	})
	if err != nil {
		return nil, err
	}
	ports := float64(cfg.InPorts + cfg.OutPorts)

	return &Link{
		PAT: power.PAT{
			Energy: power.Energy{
				Read: pat.Energy.Read*0.5 + arb.Energy.Read + spanE +
					q.Energy.Write + q.Energy.Read,
			},
			Static: pat.Static.Add(arb.Static).
				Add(power.Static{Sub: spanSub, Gate: spanGate}).
				Add(q.Static.Scale(ports)),
			Area:  pat.Area + arb.Area + spanArea + q.Area*ports,
			Delay: pat.Delay + arb.Delay + spanDelay,
		},
		Stages: 1,
	}, nil
}
