package interconnect

import (
	"testing"
	"testing/quick"

	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

func routerCfg() RouterConfig {
	return RouterConfig{
		Tech:            techtest.Node(65),
		Dev:             tech.HP,
		FlitBits:        128,
		Ports:           5,
		VirtualChannels: 4,
		BuffersPerVC:    4,
	}
}

func TestRouterPlausible(t *testing.T) {
	r, err := NewRouter(routerCfg())
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("5-port 128b router @65nm: area=%.4f mm^2 E/flit=%.2f pJ leak=%.4f W",
		r.Area*1e6, r.Energy.Read*1e12, r.Static.Total())
	if pj := r.Energy.Read * 1e12; pj < 5 || pj > 400 {
		t.Errorf("per-flit energy = %.1f pJ, implausible", pj)
	}
	if mm2 := r.Area * 1e6; mm2 < 0.01 || mm2 > 2 {
		t.Errorf("router area = %.4f mm^2, implausible", mm2)
	}
	if r.Buffers.Area <= 0 || r.Crossbar.Area <= 0 || r.Arbiters.Area <= 0 {
		t.Error("router breakdown components must all have area")
	}
}

func TestRouterScalesWithPortsAndWidth(t *testing.T) {
	base, _ := NewRouter(routerCfg())
	cfg := routerCfg()
	cfg.Ports = 8
	wide, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if wide.Crossbar.Energy.Read <= base.Crossbar.Energy.Read {
		t.Error("more ports must increase crossbar energy")
	}
	cfg = routerCfg()
	cfg.FlitBits = 256
	fat, _ := NewRouter(cfg)
	if fat.Energy.Read <= base.Energy.Read {
		t.Error("wider flits must increase per-flit energy")
	}
}

func TestRouterValidation(t *testing.T) {
	if _, err := NewRouter(RouterConfig{}); err == nil {
		t.Error("nil tech must fail")
	}
	cfg := routerCfg()
	cfg.Ports = 1
	if _, err := NewRouter(cfg); err == nil {
		t.Error("1-port router must fail")
	}
	cfg = routerCfg()
	cfg.VirtualChannels = 0
	cfg.BuffersPerVC = 0
	if _, err := NewRouter(cfg); err != nil {
		t.Errorf("zero VC/buffers should default, got %v", err)
	}
}

func TestLinkEnergyScalesWithLength(t *testing.T) {
	mk := func(mm float64) *Link {
		l, err := NewLink(LinkConfig{
			Tech: techtest.Node(65), Dev: tech.HP,
			FlitBits: 128, Length: mm * 1e-3, Clock: 1.4e9,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l1, l4 := mk(1), mk(4)
	ratio := l4.Energy.Read / l1.Energy.Read
	if ratio < 3 || ratio > 5.5 {
		t.Errorf("4x longer link energy ratio = %.2f, want ~4", ratio)
	}
	long := mk(20)
	if long.Stages < 2 {
		t.Errorf("20mm link at 1.4GHz must pipeline, stages=%d", long.Stages)
	}
}

func TestBus(t *testing.T) {
	b, err := NewBus(BusConfig{
		Tech: techtest.Node(65), Dev: tech.HP,
		Bits: 256, Length: 10e-3, Agents: 8, Clock: 1.4e9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if b.Energy.Read <= 0 || b.Static.Total() <= 0 {
		t.Fatalf("invalid bus: %+v", b.PAT)
	}
	// More agents add load.
	wide, _ := NewBus(BusConfig{
		Tech: techtest.Node(65), Dev: tech.HP,
		Bits: 256, Length: 10e-3, Agents: 32, Clock: 1.4e9,
	})
	if wide.Energy.Read <= b.Energy.Read {
		t.Error("more agents must increase bus transfer energy")
	}
	if _, err := NewBus(BusConfig{Tech: techtest.Node(65), Bits: 0, Agents: 4}); err == nil {
		t.Error("zero-width bus must fail")
	}
}

func TestFlatCrossbar(t *testing.T) {
	x, err := NewCrossbar(CrossbarConfig{
		Tech: techtest.Node(90), Dev: tech.HP,
		InPorts: 8, OutPorts: 9, Bits: 128,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("Niagara-style 8x9 128b crossbar @90nm: area=%.3f mm^2 E/xfer=%.1f pJ leak=%.3f W",
		x.Area*1e6, x.Energy.Read*1e12, x.Static.Total())
	if mm2 := x.Area * 1e6; mm2 < 0.5 || mm2 > 40 {
		t.Errorf("crossbar area = %.3f mm^2, implausible for 8x9x128", mm2)
	}
	small, _ := NewCrossbar(CrossbarConfig{
		Tech: techtest.Node(90), Dev: tech.HP,
		InPorts: 2, OutPorts: 2, Bits: 128,
	})
	if small.Energy.Read >= x.Energy.Read {
		t.Error("smaller crossbar must cost less per transfer")
	}
}

func TestRouterTechnologyScaling(t *testing.T) {
	cfg := routerCfg()
	r65, _ := NewRouter(cfg)
	cfg.Tech = techtest.Node(22)
	r22, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if r22.Energy.Read >= r65.Energy.Read {
		t.Error("22nm router must use less energy per flit than 65nm")
	}
	if r22.Area >= r65.Area {
		t.Error("22nm router must be smaller")
	}
}

func TestQuickRouterInvariants(t *testing.T) {
	n := techtest.Node(32)
	f := func(p, v, w uint8) bool {
		cfg := RouterConfig{
			Tech: n, Dev: tech.HP,
			Ports:           int(p%7) + 2,
			VirtualChannels: int(v%8) + 1,
			BuffersPerVC:    2,
			FlitBits:        32 * (int(w%8) + 1),
		}
		r, err := NewRouter(cfg)
		if err != nil {
			return false
		}
		return r.Energy.Read > 0 && r.Area > 0 && r.Static.Sub > 0 && r.Delay > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLowSwingBusSavesEnergy(t *testing.T) {
	mk := func(low bool) *Link {
		b, err := NewBus(BusConfig{
			Tech: techtest.Node(65), Dev: tech.HP,
			Bits: 256, Length: 12e-3, Agents: 8, Clock: 1.4e9,
			LowSwing: low,
		})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	full, low := mk(false), mk(true)
	if low.Energy.Read >= full.Energy.Read {
		t.Errorf("low-swing bus (%.3g J) must beat full-swing (%.3g J)",
			low.Energy.Read, full.Energy.Read)
	}
	if low.Delay <= full.Delay {
		t.Error("low-swing bus must be slower")
	}
}
