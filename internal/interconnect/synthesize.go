package interconnect

import "mcpat/internal/component"

// Memoized fronts of the fabric constructors. The configs have no Name
// field, so their raw values (with Tech replaced by the node's value
// fingerprint) canonically identify a synthesis; keys do not fold zero
// fields onto their defaults, which at worst costs one extra cache entry
// per spelling of the same configuration, never a wrong hit. Each key is
// a distinct struct type so the fabric families can never collide inside
// the shared KindFabric table. Results must be treated as immutable.

type routerKey struct {
	TechFP uint64
	Cfg    RouterConfig
}

// SynthesizeRouter is the memoized front of NewRouter.
func SynthesizeRouter(cfg RouterConfig) (*Router, error) {
	if cfg.Tech == nil {
		return NewRouter(cfg) // surface the constructor's config error
	}
	key := routerKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindFabric, key, func() (*Router, error) {
		return NewRouter(cfg)
	})
}

type linkKey struct {
	TechFP uint64
	Cfg    LinkConfig
}

// SynthesizeLink is the memoized front of NewLink.
func SynthesizeLink(cfg LinkConfig) (*Link, error) {
	if cfg.Tech == nil {
		return NewLink(cfg)
	}
	key := linkKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindFabric, key, func() (*Link, error) {
		return NewLink(cfg)
	})
}

type busKey struct {
	TechFP uint64
	Cfg    BusConfig
}

// SynthesizeBus is the memoized front of NewBus.
func SynthesizeBus(cfg BusConfig) (*Link, error) {
	if cfg.Tech == nil {
		return NewBus(cfg)
	}
	key := busKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindFabric, key, func() (*Link, error) {
		return NewBus(cfg)
	})
}

type crossbarKey struct {
	TechFP uint64
	Cfg    CrossbarConfig
}

// SynthesizeCrossbar is the memoized front of NewCrossbar.
func SynthesizeCrossbar(cfg CrossbarConfig) (*Link, error) {
	if cfg.Tech == nil {
		return NewCrossbar(cfg)
	}
	key := crossbarKey{TechFP: cfg.Tech.Fingerprint(), Cfg: cfg}
	key.Cfg.Tech = nil
	return component.Memoize(component.KindFabric, key, func() (*Link, error) {
		return NewCrossbar(cfg)
	})
}
