package mcpat_test

// Bit-identity contract for the synthesis caches at the whole-chip
// level: for every validation target, the full power/area report tree
// produced with a cache enabled (both the filling pass and the all-hits
// pass) must be byte-for-byte equal to the tree produced with all
// caching disabled. This file isolates the array-level cache (the
// subsystem cache above it is switched off so chip builds actually reach
// array.New); subsys_equivalence_test.go covers the subsystem layer.
// The concurrent variant rebuilds all targets from parallel goroutines —
// the explore-engine access pattern — and is the -race proof that shared
// single-flight solves do not leak state between evaluations.

import (
	"reflect"
	"sync"
	"testing"

	"mcpat"
)

// uncachedReports builds every validation target with both synthesis
// cache layers disabled — the ground-truth reference reports.
func uncachedReports(t *testing.T) map[string]*mcpat.Report {
	t.Helper()
	prevArr := mcpat.SetArraySynthCache(false)
	prevSub := mcpat.SetSubsysSynthCache(false)
	defer func() {
		mcpat.SetArraySynthCache(prevArr)
		mcpat.SetSubsysSynthCache(prevSub)
	}()
	ref := make(map[string]*mcpat.Report)
	for _, target := range mcpat.ValidationTargets() {
		res, err := mcpat.Validate(target)
		if err != nil {
			t.Fatalf("%s uncached: %v", target.Ref.Name, err)
		}
		ref[target.Ref.Name] = res.Report
	}
	return ref
}

func TestCachedReportsBitIdentical(t *testing.T) {
	ref := uncachedReports(t)
	prevSub := mcpat.SetSubsysSynthCache(false)
	defer mcpat.SetSubsysSynthCache(prevSub)
	mcpat.ResetArraySynthCache()

	for pass, label := range []string{"cold (cache-filling)", "warm (all hits)"} {
		for _, target := range mcpat.ValidationTargets() {
			res, err := mcpat.Validate(target)
			if err != nil {
				t.Fatalf("%s pass %d: %v", target.Ref.Name, pass, err)
			}
			if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
				t.Errorf("%s: %s cached report differs from uncached reference",
					target.Ref.Name, label)
			}
		}
	}
	if cs := mcpat.ArraySynthCacheStats(); cs.Hits == 0 {
		t.Error("warm pass produced no cache hits; cache not exercised")
	}
}

func TestCachedReportsBitIdenticalConcurrent(t *testing.T) {
	ref := uncachedReports(t)
	prevSub := mcpat.SetSubsysSynthCache(false)
	defer mcpat.SetSubsysSynthCache(prevSub)
	mcpat.ResetArraySynthCache()

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, target := range mcpat.ValidationTargets() {
				res, err := mcpat.Validate(target)
				if err != nil {
					errs <- target.Ref.Name + ": " + err.Error()
					return
				}
				if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
					errs <- target.Ref.Name + ": concurrent cached report differs from uncached reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
