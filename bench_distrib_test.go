package mcpat_test

// Distributed-sweep benchmarks: the coordinator/worker fan-out measured
// against the single-process engine on the same sweep. Workers are real
// serve.Server instances behind httptest listeners, so every shard pays
// the full NDJSON wire protocol — this is the honest per-shard overhead
// a `mcpat-dse -remote` user sees, minus only real network latency.
// Note that in-process workers share the process-wide synthesis caches,
// so the warm numbers isolate coordination cost from synthesis cost;
// scaling beyond 1x requires actual hardware parallelism (see
// BENCH_dse.json's host note — on a 1-hardware-thread host the workers
// serialize and the distributed path can only add overhead).

import (
	"context"
	"fmt"
	"net/http/httptest"
	"testing"

	"mcpat"
	"mcpat/internal/serve"
)

// distribBenchSweep is a 140-candidate sweep — large enough that the
// coordinator splits it into several shards per worker (default
// MinShard 8) and work-stealing has something to steal.
func distribBenchSweep() (mcpat.DSEParams, mcpat.DSESpace, mcpat.DSEConstraints) {
	return mcpat.DSEParams{NM: 22, ClockHz: 2.5e9, Threads: 4},
		mcpat.DSESpace{
			Cores:        []int{2, 4, 8, 16, 32, 64, 128},
			L2PerCoreKB:  []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384},
			ClusterSizes: []int{1, 2},
		},
		mcpat.DSEConstraints{MaxAreaMM2: 400, MaxTDP: 300}
}

// startBenchWorkers brings up n worker-mode servers on loopback
// listeners and returns their base URLs.
func startBenchWorkers(b *testing.B, n int) []string {
	b.Helper()
	urls := make([]string, n)
	for i := range urls {
		srv := serve.New(serve.Config{WorkerMode: true})
		ts := httptest.NewServer(srv.Handler())
		b.Cleanup(func() {
			ts.Close()
			_ = srv.Shutdown(context.Background())
		})
		urls[i] = ts.URL
	}
	return urls
}

// BenchmarkDSEDistributed compares the single-process engine (the
// baseline sub-benchmark) against the distributed coordinator fanned
// out over 1, 2, and 4 HTTP workers. All variants run warm (synthesis
// caches enabled and shared), so the deltas are pure coordination and
// wire cost; scaling efficiency is workers-N candidates/s over the
// baseline. BENCH_dse.json records the reference numbers.
func BenchmarkDSEDistributed(b *testing.B) {
	p, space, cons := distribBenchSweep()

	b.Run("baseline", func(b *testing.B) {
		mcpat.ResetArraySynthCache()
		b.ReportAllocs()
		var evaluated int
		for i := 0; i < b.N; i++ {
			res, err := mcpat.ExploreDesignSpaceContext(context.Background(),
				p, space, cons, mcpat.MaxThroughput, &mcpat.DSEOptions{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			evaluated = res.Evaluated
		}
		b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
	})

	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers-%d", n), func(b *testing.B) {
			remotes := startBenchWorkers(b, n)
			mcpat.ResetArraySynthCache()
			b.ReportAllocs()
			b.ResetTimer()
			var evaluated int
			for i := 0; i < b.N; i++ {
				res, err := mcpat.ExploreDesignSpaceDistributed(context.Background(),
					p, space, cons, mcpat.MaxThroughput, &mcpat.DistribOptions{
						NoLocal:      true,
						Remotes:      remotes,
						ShardWorkers: 1,
					})
				if err != nil {
					b.Fatal(err)
				}
				evaluated = res.Evaluated
			}
			b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
		})
	}
}
