// Command mcpat-tables regenerates every table and figure of the paper's
// evaluation from the models in this repository (see DESIGN.md section 3
// for the experiment index):
//
//	T1  -table specs       modeled-processor specification table
//	T2  -table niagara     Niagara power validation
//	T3  -table niagara2    Niagara2 power validation
//	T4  -table alpha21364  Alpha 21364 power validation
//	T5  -table xeon        Xeon Tulsa power validation
//	T6  -table area        die-area validation of all four targets
//	F1  -fig devices       device-type study across nodes
//	F2  -fig perf          case-study performance vs clustering
//	F3  -fig power         case-study runtime power breakdown
//	F4  -fig area          case-study area breakdown
//	F5  -fig metrics       EDP / ED^2P / EDAP / ED^2AP vs clustering
//	F6  -fig scaling       best clustering per technology node
//
// Run with -all to print everything. The rendering itself lives in
// internal/tables, where every artifact is protected by a golden test.
package main

import (
	"flag"
	"os"

	"mcpat/internal/cliutil"
	"mcpat/internal/tables"
)

func main() {
	var (
		table = flag.String("table", "", "table to print: specs|niagara|niagara2|alpha21364|xeon|area")
		fig   = flag.String("fig", "", "figure to print: devices|perf|power|area|metrics|scaling")
		all   = flag.Bool("all", false, "print every table and figure")
	)
	cacheDir, cacheSize := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()
	if closeCache := cliutil.EnablePersistentCache(*cacheDir, *cacheSize); closeCache != nil {
		defer closeCache()
	}

	var err error
	switch {
	case *all:
		err = tables.All(os.Stdout)
	case *table != "":
		err = tables.Table(os.Stdout, *table)
	case *fig != "":
		err = tables.Figure(os.Stdout, *fig)
	default:
		flag.Usage()
		os.Exit(cliutil.ExitConfig)
	}
	if err != nil {
		// Shared CLI convention: 2=config, 3=infeasible/model-domain,
		// 1=internal.
		cliutil.Fatal("mcpat-tables", err)
	}
}
