// Command mcpat-dse runs a constrained design-space exploration: it
// sweeps core count, per-core L2 capacity, fabric, and clustering at a
// technology node; prunes points that exceed the area/TDP budget; ranks
// the survivors under the chosen objective; and prints the Pareto story.
//
// Two search strategies are available. The default exhaustive sweep
// evaluates every point of the cross product. -search=pareto runs the
// budgeted adaptive multi-objective search instead: it spends -budget
// evaluations (default a tenth of the space), recovers the same
// single-objective winners on the validation spaces, and prints the
// Pareto front over {power, area, delay, ED², EDA}. The pareto search
// is deterministic per -seed: the same seed and space replay the same
// candidate sequence at any -workers count.
//
// The sweep is parallel and fault tolerant: candidates are evaluated by a
// bounded worker pool, a candidate whose evaluation faults or exceeds
// -timeout is reported in a failure section without aborting the sweep
// (unless -keep-going=false), and Ctrl-C stops the sweep promptly while
// still printing the partial ranking.
//
// Example:
//
//	mcpat-dse -nm 22 -cores 16,32,64 -l2kb 128,256,512 \
//	          -max-area 400 -max-tdp 250 -objective perf/watt
//	mcpat-dse -cores 2,4,8,16,32,64,128 -l2kb 64,128,256,512,1024,2048 \
//	          -search pareto -budget 40 -seed 7
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"

	"mcpat"
	"mcpat/internal/cliutil"
)

func main() {
	var (
		nm        = flag.Float64("nm", 22, "technology node (nm)")
		clockGHz  = flag.Float64("clock", 2.5, "clock (GHz)")
		threads   = flag.Int("threads", 4, "hardware threads per core")
		cores     = flag.String("cores", "16,32,64", "core counts to sweep")
		l2kb      = flag.String("l2kb", "256", "per-core L2 KB to sweep")
		clusters  = flag.String("clusters", "1,2,4", "cluster sizes to sweep (mesh)")
		maxArea   = flag.Float64("max-area", 400, "area budget (mm^2, 0 = none)")
		maxTDP    = flag.Float64("max-tdp", 250, "TDP budget (W, 0 = none)")
		objName   = flag.String("objective", "throughput", "throughput|perf/watt|ed2ap")
		search    = flag.String("search", "exhaustive", "search strategy: exhaustive|pareto")
		budget    = flag.Int("budget", 0, "pareto evaluation budget (0 = a tenth of the space)")
		seed      = flag.Int64("seed", 1, "pareto search RNG seed (same seed replays the same search)")
		topN      = flag.Int("top", 8, "candidates to print")
		workers   = flag.Int("workers", 0, "parallel evaluations (0 = GOMAXPROCS)")
		par       = flag.Int("par", 0, "parallel subsystem builds inside each cold evaluation (0 = process default, 1 = serial)")
		timeout   = flag.Duration("timeout", 0, "per-candidate evaluation deadline (0 = none)")
		keepGoing = flag.Bool("keep-going", true, "continue the sweep past failed candidates")
		remote    = flag.String("remote", "", "comma-separated mcpatd -worker base URLs: shard the exhaustive sweep across them (plus this process) with work-stealing; results are bit-identical to a local sweep")
		stats     = flag.Bool("stats", false, "print synthesis-cache statistics (array and subsystem reuse) for the sweep")
		noCache   = flag.Bool("no-cache", false, "disable the synthesis result caches (array and subsystem)")
		asJSON    = flag.Bool("json", false, "emit the sweep as JSON (candidates, failures, cache stats) - the same schema the mcpatd service returns")
	)
	cacheDir, cacheSize := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()
	if closeCache := cliutil.EnablePersistentCache(*cacheDir, *cacheSize); closeCache != nil {
		defer closeCache()
	}

	var obj mcpat.DSEObjective
	switch *objName {
	case "throughput":
		obj = mcpat.MaxThroughput
	case "perf/watt":
		obj = mcpat.MaxPerfPerWatt
	case "ed2ap":
		obj = mcpat.MinED2AP
	default:
		cliutil.Usagef("mcpat-dse", "unknown objective %q", *objName)
	}

	searchKind, err := mcpat.ParseDSESearchKind(*search)
	if err != nil {
		cliutil.Usagef("mcpat-dse", "%v", err)
	}

	if *noCache {
		mcpat.SetArraySynthCache(false)
		mcpat.SetSubsysSynthCache(false)
	}

	remotes := splitCSV(*remote)
	if len(remotes) > 0 && searchKind != mcpat.SearchExhaustive {
		cliutil.Usagef("mcpat-dse", "-remote shards exhaustive sweeps only (the pareto search is sequential by nature)")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	p := mcpat.DSEParams{NM: *nm, ClockHz: *clockGHz * 1e9, Threads: *threads}
	space := mcpat.DSESpace{
		Cores:        ints(*cores),
		L2PerCoreKB:  ints(*l2kb),
		ClusterSizes: ints(*clusters),
	}
	cons := mcpat.DSEConstraints{MaxAreaMM2: *maxArea, MaxTDP: *maxTDP}

	var res *mcpat.DSEResult
	var coord *mcpat.DistribMetrics
	if len(remotes) > 0 {
		coord = &mcpat.DistribMetrics{}
		res, err = mcpat.ExploreDesignSpaceDistributed(ctx, p, space, cons, obj,
			&mcpat.DistribOptions{
				Remotes:          remotes,
				ShardWorkers:     *workers,
				SynthWorkers:     *par,
				CandidateTimeout: *timeout,
				Metrics:          coord,
			})
	} else {
		res, err = mcpat.ExploreDesignSpaceContext(ctx, p, space, cons, obj,
			&mcpat.DSEOptions{
				Workers:          *workers,
				SynthWorkers:     *par,
				CandidateTimeout: *timeout,
				FailFast:         !*keepGoing,
				Search:           searchKind,
				Budget:           *budget,
				Seed:             *seed,
			})
	}
	interrupted := errors.Is(err, context.Canceled)
	if err != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "mcpat-dse:", cliutil.FirstLine(err.Error()))
		if res == nil {
			os.Exit(cliutil.ExitCode(err))
		}
	}
	if interrupted {
		fmt.Fprintln(os.Stderr, "mcpat-dse: interrupted; showing partial results")
	}

	if *asJSON {
		rep := mcpat.NewDSEReport(res, obj)
		if coord != nil {
			st := coord.Snapshot()
			rep.Distrib = &st
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(rep); encErr != nil {
			fmt.Fprintln(os.Stderr, "mcpat-dse:", encErr)
			os.Exit(cliutil.ExitInternal)
		}
		exit(interrupted, err)
	}

	if res.Search == mcpat.SearchPareto {
		fmt.Printf("Explored %d of %d design points (%d feasible) at %gnm under %s [pareto search]\n\n",
			res.Evaluated, res.SpaceSize, res.Feasible, *nm, *objName)
	} else {
		fmt.Printf("Explored %d design points (%d feasible) at %gnm under %s\n\n",
			res.Evaluated, res.Feasible, *nm, *objName)
	}
	fmt.Printf("%6s %6s %8s %8s %8s %8s %10s %10s  %s\n",
		"cores", "l2KB", "cluster", "TDP W", "mm^2", "GIPS", "GIPS/W", "score", "status")
	shown := 0
	for _, c := range res.Candidates {
		if shown >= *topN {
			break
		}
		status := "ok"
		if !c.Feasible {
			status = c.Reject
		}
		fmt.Printf("%6d %6d %8d %8.1f %8.1f %8.1f %10.2f %10.3g  %s\n",
			c.Cores, c.L2PerCoreKB, c.ClusterSize, c.TDP, c.AreaMM2,
			c.Perf/1e9, c.Perf/1e9/c.RunW, c.Score, status)
		shown++
	}
	if len(res.Failures) > 0 {
		fmt.Printf("\n%d candidate(s) failed to evaluate:\n", len(res.Failures))
		for _, f := range res.Failures {
			fmt.Printf("  %s\n", firstLine(f.String()))
		}
	}
	if res.Best != nil {
		fmt.Printf("\nBest: %d cores, %d KB L2/core, cluster=%d  (%.1f W, %.1f mm^2, %.1f GIPS)\n",
			res.Best.Cores, res.Best.L2PerCoreKB, res.Best.ClusterSize,
			res.Best.TDP, res.Best.AreaMM2, res.Best.Perf/1e9)
	} else {
		fmt.Println("\nNo feasible design under the given budget.")
	}
	if len(res.Front) > 0 {
		fmt.Printf("\nPareto front (%d non-dominated design points over power/area/delay/ED²/EDA):\n", len(res.Front))
		fmt.Printf("%6s %6s %8s %8s %8s %8s %12s\n",
			"cores", "l2KB", "cluster", "watts", "mm^2", "GIPS", "ED2AP")
		for _, c := range res.Front {
			d := 1 / c.Perf
			e := c.RunW * d
			fmt.Printf("%6d %6d %8d %8.1f %8.1f %8.1f %12.3g\n",
				c.Cores, c.L2PerCoreKB, c.ClusterSize, c.RunW, c.AreaMM2,
				c.Perf/1e9, e*d*d*c.AreaMM2)
		}
	}
	if *stats {
		cs := res.Cache
		fmt.Printf("\nArray synthesis cache: %d hits, %d misses, %d shared, %d bypassed (%.1f%% hit rate, %d resident entries)\n",
			cs.Hits, cs.Misses, cs.Shared, cs.Bypassed, 100*cs.HitRate(), cs.Entries)
		ss := res.Subsys
		tot := ss.Total()
		fmt.Printf("Subsystem cache: %d hits, %d misses, %d shared, %d bypassed (%.1f%% hit rate, %d resident entries)\n",
			tot.Hits, tot.Misses, tot.Shared, tot.Bypassed, 100*ss.HitRate(), ss.Entries)
		for i, k := range ss.Kinds {
			if k == (mcpat.SubsysKindStats{}) {
				continue
			}
			fmt.Printf("  %-7s %d hits, %d misses\n", mcpat.SubsysKindName(i), k.Hits, k.Misses)
		}
		op := res.ArrayOpt
		fmt.Printf("Array optimizer: %d organizations evaluated, %d pruned (%.1f%% of the enumeration skipped)\n",
			op.Evaluated, op.Pruned, 100*op.PruneRate())
		if ds := res.Disk; ds.Enabled {
			fmt.Printf("Disk cache: %d hits, %d misses, %d corrupt, %d evicted, %d write errors (%.1f%% hit rate; %d entries, %.1f MiB resident)\n",
				ds.Hits, ds.Misses, ds.Corrupt, ds.Evicted, ds.WriteErrors,
				100*ds.HitRate(), ds.Entries, float64(ds.Bytes)/(1<<20))
		} else {
			fmt.Println("Disk cache: disabled (set -cache-dir to persist synthesis results)")
		}
	}
	if *stats && coord != nil {
		st := coord.Snapshot()
		fmt.Printf("\nDistributed sweep: %d shard(s) dispatched (%d stolen, %d retried)\n",
			st.ShardsDispatched, st.ShardsStolen, st.ShardsRetried)
		for _, w := range st.Workers {
			fmt.Printf("  %-28s %d shard(s), %d candidate(s), %.1f cand/s\n",
				w.Name, w.Shards, w.Candidates, w.Throughput)
		}
	}
	exit(interrupted, err)
}

// exit applies the shared CLI convention: 130 for an interrupt (shell
// style), otherwise the guard-kind mapping (2=config, 3=infeasible/
// model-domain, 1=internal, 0=success).
func exit(interrupted bool, err error) {
	if interrupted {
		os.Exit(130)
	}
	os.Exit(cliutil.ExitCode(err))
}

func ints(csv string) []int {
	var out []int
	for _, part := range strings.Split(csv, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil {
			cliutil.Usagef("mcpat-dse", "bad integer %q", part)
		}
		out = append(out, v)
	}
	return out
}

// splitCSV splits a comma-separated flag into its non-empty parts.
func splitCSV(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// firstLine trims a multi-line failure (panic stacks) for terminal output.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
