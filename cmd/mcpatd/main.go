// Command mcpatd is the McPAT evaluation service: a JSON-over-HTTP
// front end to the power/area/timing models, sharing one warm synthesis
// cache across every client instead of paying CLI cold-start per query.
//
// Endpoints:
//
//	POST   /v1/evaluate   synchronous single-chip evaluation
//	                      (EvaluateRequest JSON, or McPAT-style XML with
//	                      an XML content type)
//	POST   /v1/batch      evaluate many configs in one request, sharing
//	                      one warm cache generation
//	POST   /v1/dse        submit an async design-space sweep; 202 + job id
//	POST   /v1/dse/shard  (with -worker) evaluate one sweep shard for a
//	                      coordinator, streaming progress as NDJSON
//	GET    /v1/jobs       job summaries
//	GET    /v1/jobs/{id}  job status / progress / result
//	DELETE /v1/jobs/{id}  cancel a queued or running job
//	GET    /healthz       liveness (503 while draining)
//	GET    /metrics       request/job/cache counters (JSON)
//
// Overload is shed with 429 + Retry-After: -max-inflight bounds
// concurrent evaluations and -job-queue bounds waiting sweeps. SIGTERM
// (or SIGINT) starts a graceful drain: the listener stops accepting,
// running jobs are canceled (their partial results stay pollable until
// the process exits), and in-flight responses flush before exit,
// bounded by -drain-timeout.
//
// With -journal the job store is durable: accepted DSE jobs are
// journaled (fsynced) before the 202 response, and jobs that were
// queued or running when the process died — SIGKILL included — are
// re-run with their original ids on the next start. With -cache-dir the
// synthesis caches gain a crash-safe disk tier shared with the CLIs, so
// a restarted daemon warm-starts instead of re-synthesizing.
//
// Distributed sweeps: -worker turns the daemon into a shard evaluator
// for a coordinator (mcpat-dse -remote, or another mcpatd started with
// -remote host1,host2 that fans its /v1/dse jobs out). Workers sharing
// a -cache-dir on one host also share the persistent synthesis tier.
// -pprof-addr exposes net/http/pprof on a separate (keep it local)
// listener for profiling coordinator and worker hot paths in situ.
//
// Example:
//
//	mcpatd -addr :8490
//	curl -s localhost:8490/v1/evaluate -d '{"preset":"niagara"}'
//	mcpatd -addr :8491 -worker             # shard evaluator
//	mcpat-dse -remote localhost:8491 ...   # coordinator
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	_ "net/http/pprof" // registers debug handlers on the default mux, exposed only via -pprof-addr
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"mcpat"
	"mcpat/internal/cliutil"
)

func main() {
	var (
		addr         = flag.String("addr", ":8490", "listen address (use :0 for a random port)")
		maxInflight  = flag.Int("max-inflight", 0, "concurrent synchronous evaluations (0 = GOMAXPROCS)")
		synthWorkers = flag.Int("synth-workers", 0, "parallel subsystem builds inside each cold evaluation (0 = GOMAXPROCS, 1 = serial)")
		reqTimeout   = flag.Duration("request-timeout", 60*time.Second, "per-request evaluation deadline (<0 = none)")
		jobWorkers   = flag.Int("job-workers", 2, "concurrently running DSE jobs")
		jobQueue     = flag.Int("job-queue", 16, "queued DSE jobs before shedding with 429")
		jobRetention = flag.Int("job-retention", 64, "finished jobs kept for polling")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown deadline")
		journalPath  = flag.String("journal", "", "job journal file: queued/running DSE jobs survive restarts (empty = not durable)")
		worker       = flag.Bool("worker", false, "enable POST /v1/dse/shard so a coordinator (mcpat-dse -remote or another mcpatd -remote) can dispatch sweep shards here")
		remote       = flag.String("remote", "", "comma-separated mcpatd -worker base URLs: coordinate exhaustive DSE jobs across them (plus this process)")
		pprofAddr    = flag.String("pprof-addr", "", "listen address for net/http/pprof (empty = disabled); keep it on localhost")
		quiet        = flag.Bool("quiet", false, "suppress per-request logging")
	)
	cacheDir, cacheSize := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()

	if *synthWorkers > 0 {
		mcpat.SetSynthWorkers(*synthWorkers)
	}
	if closeCache := cliutil.EnablePersistentCache(*cacheDir, *cacheSize); closeCache != nil {
		defer closeCache()
	}

	logf := log.Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	srv := mcpat.NewServer(mcpat.ServerConfig{
		MaxInFlight:    *maxInflight,
		RequestTimeout: *reqTimeout,
		JobWorkers:     *jobWorkers,
		JobQueueDepth:  *jobQueue,
		JobRetention:   *jobRetention,
		JournalPath:    *journalPath,
		WorkerMode:     *worker,
		RemoteWorkers:  splitCSV(*remote),
		Logf:           logf,
	})

	// The profiling listener is separate from the service listener and
	// uses the net/http/pprof handlers on the default mux (the service
	// itself serves from its own mux, so nothing else leaks here).
	if *pprofAddr != "" {
		go func() {
			log.Printf("mcpatd: pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("mcpatd: pprof listener failed: %v", err)
			}
		}()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mcpatd:", err)
		os.Exit(1)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}

	// Printed unconditionally so scripts (and the CI smoke test) can
	// scrape the bound port when -addr :0 picked a random one.
	log.Printf("mcpatd: listening on %s", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "mcpatd:", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard

	log.Printf("mcpatd: signal received; draining (timeout %s)", *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	// Close the listener and wait for in-flight connections first, then
	// drain the service layer (cancel jobs, wait for workers).
	httpErr := httpSrv.Shutdown(drainCtx)
	srvErr := srv.Shutdown(drainCtx)
	if err := errors.Join(httpErr, srvErr); err != nil {
		fmt.Fprintln(os.Stderr, "mcpatd: unclean shutdown:", err)
		os.Exit(1)
	}
	log.Printf("mcpatd: clean shutdown")
}

// splitCSV splits a comma-separated flag into its non-empty parts.
func splitCSV(csv string) []string {
	var out []string
	for _, part := range strings.Split(csv, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
