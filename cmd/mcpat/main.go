// Command mcpat is the command-line front end of the framework, mirroring
// the original tool's interface: it reads a McPAT-style XML configuration
// (plus optional runtime statistics), synthesizes the chip, and prints
// the hierarchical power/area report.
//
// Usage:
//
//	mcpat -infile chip.xml [-print_level N] [-stats]
//	mcpat -template niagara|niagara2|alpha21364|xeon > chip.xml
//
// -print_level controls report depth (0 = chip totals only, -1 = full
// tree). -template writes a ready-to-run XML description of one of the
// validation processors to stdout.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"mcpat"
	"mcpat/internal/cliutil"
)

func main() {
	var (
		infile     = flag.String("infile", "", "XML chip configuration (with optional <stat> entries)")
		printLevel = flag.Int("print_level", 2, "report depth (-1 = unlimited)")
		template   = flag.String("template", "", "write a template XML; see -list-templates for names")
		listTmpl   = flag.Bool("list-templates", false, "list available template names")
		withStats  = flag.Bool("stats", true, "apply <stat> entries from the input as runtime statistics")
		timing     = flag.Bool("timing", false, "print the per-component timing report (critical paths)")
		asJSON     = flag.Bool("json", false, "emit the report as JSON instead of text")
	)
	cacheDir, cacheSize := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()
	if closeCache := cliutil.EnablePersistentCache(*cacheDir, *cacheSize); closeCache != nil {
		defer closeCache()
	}

	if *listTmpl {
		for _, p := range mcpat.Presets() {
			fmt.Printf("%-14s %s\n", p.Name, p.Description)
		}
		return
	}
	if *template != "" {
		if err := writeTemplate(*template); err != nil {
			fatal(err)
		}
		return
	}
	if *infile == "" {
		flag.Usage()
		cliutil.Usagef("mcpat", "-infile or -template required")
	}

	cfg, stats, err := mcpat.LoadXMLFile(*infile)
	if err != nil {
		fatal(err)
	}
	p, err := mcpat.New(cfg)
	if err != nil {
		fatal(err)
	}
	if !*withStats {
		stats = nil
	}
	rep := p.Report(stats)

	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}

	fmt.Printf("McPAT results for %s (%gnm, %.2f GHz)\n", cfg.Name, cfg.NM, cfg.ClockHz/1e9)
	fmt.Printf("  TDP          = %.3f W (dynamic %.3f W + leakage %.3f W)\n",
		rep.Peak(), rep.PeakDynamic, rep.Leakage())
	if rep.RuntimeDynamic > 0 {
		fmt.Printf("  Runtime power= %.3f W (dynamic %.3f W + leakage %.3f W)\n",
			rep.RuntimeDynamic+rep.Leakage(), rep.RuntimeDynamic, rep.Leakage())
	}
	fmt.Printf("  Die area     = %.2f mm^2\n\n", rep.Area*1e6)
	fmt.Print(rep.Format(*printLevel))

	if *timing {
		fmt.Printf("\nTiming report (clock period %.3f ns):\n", 1e9/cfg.ClockHz)
		fmt.Printf("%-20s %10s %10s %8s %5s\n", "component", "delay ns", "cycle ns", "cycles", "met")
		for _, e := range p.TimingReport() {
			fmt.Printf("%-20s %10.3f %10.3f %8.2f %5v\n",
				e.Component, e.Delay*1e9, e.Cycle*1e9, e.Cycles, e.Met)
		}
	}
}

func writeTemplate(name string) error {
	name = strings.ToLower(name)
	if p, err := mcpat.PresetByName(name); err == nil {
		return mcpat.WriteXML(os.Stdout, p.Config)
	}
	// Fall back to substring matching against preset names.
	for _, p := range mcpat.Presets() {
		if strings.Contains(p.Name, name) {
			return mcpat.WriteXML(os.Stdout, p.Config)
		}
	}
	return fmt.Errorf("mcpat: unknown template %q (see -list-templates)", name)
}

// fatal maps guard error kinds to the shared CLI exit codes (2=config,
// 3=infeasible/model-domain, 1=internal) and prints the component path
// the error carries.
func fatal(err error) {
	cliutil.Fatal("mcpat", err)
}
