// Command mcpat-trace turns a gem5 run into a time-series power trace:
// it maps the run's config.json onto a native chip description
// (template-free, no XML), synthesizes the chip once, scores every
// statistics dump in stats.txt as one interval, and writes the trace as
// CSV (default), NDJSON (-ndjson, the /v1/trace wire format), or a
// single JSON document (-json).
//
// With -thermal the power→temperature→DVFS loop closes around the trace:
// each interval's power heats a lumped thermal model of the die (per-block
// spreading resistances from the chip floorplan with -floorplan), the
// resulting hotspot temperature retunes the next interval's leakage, and
// an optional governor (-governor headroom) throttles frequency/voltage
// against the junction limit. Closed-loop traces gain temperature_k,
// freq_hz, and throttled columns.
//
// Usage:
//
//	mcpat-trace -config config.json -stats stats.txt [-json|-ndjson] [-notes]
//	            [-thermal -rtheta K/W [-ambient K] [-tjmax K] [-tau s]
//	             [-floorplan] [-governor none|headroom] [-target K]]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mcpat"
	"mcpat/internal/cliutil"
)

func main() {
	var (
		configFile = flag.String("config", "", "gem5 config.json of the run")
		statsFile  = flag.String("stats", "", "gem5 stats.txt (multi-dump)")
		asJSON     = flag.Bool("json", false, "emit the whole trace as one JSON document")
		asNDJSON   = flag.Bool("ndjson", false, "emit NDJSON records (the /v1/trace stream format)")
		notes      = flag.Bool("notes", false, "print the config-mapping provenance to stderr")

		thermalOn = flag.Bool("thermal", false, "close the power/thermal/DVFS loop around the trace")
		rtheta    = flag.Float64("rtheta", 0, "junction-to-ambient thermal resistance in K/W (required with -thermal)")
		ambient   = flag.Float64("ambient", 0, "ambient temperature in K (0 = 318 K default)")
		tjmax     = flag.Float64("tjmax", 0, "junction temperature limit in K (0 = none; sets the headroom governor's default setpoint)")
		tau       = flag.Float64("tau", 0, "thermal time constant in s (0 = quasi-static)")
		useFloor  = flag.Bool("floorplan", false, "per-subsystem thermal blocks from the chip floorplan (default: whole-die lump)")
		governor  = flag.String("governor", "none", "DVFS policy: none or headroom")
		targetK   = flag.Float64("target", 0, "headroom governor throttle setpoint in K (0 = tjmax-5)")
	)
	cacheDir, cacheSize := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()
	if closeCache := cliutil.EnablePersistentCache(*cacheDir, *cacheSize); closeCache != nil {
		defer closeCache()
	}
	if *configFile == "" || *statsFile == "" {
		flag.Usage()
		cliutil.Usagef("mcpat-trace", "-config and -stats are required")
	}
	if *asJSON && *asNDJSON {
		cliutil.Usagef("mcpat-trace", "-json and -ndjson are mutually exclusive")
	}

	cfgF, err := os.Open(*configFile)
	if err != nil {
		fatal(err)
	}
	defer cfgF.Close()
	statsF, err := os.Open(*statsFile)
	if err != nil {
		fatal(err)
	}
	defer statsF.Close()

	eng, intervals, res, err := mcpat.TraceFromGem5(cfgF, statsF)
	if err != nil {
		fatal(err)
	}
	if *thermalOn {
		if *rtheta <= 0 {
			cliutil.Usagef("mcpat-trace", "-thermal requires a positive -rtheta (K/W)")
		}
		gov, err := mcpat.NewGovernor(*governor, *targetK, nil)
		if err != nil {
			fatal(err)
		}
		if err := eng.EnableLoop(mcpat.TraceLoopOptions{
			Package: mcpat.PackageSpec{
				RthetaJA:   *rtheta,
				AmbientK:   *ambient,
				MaxTjK:     *tjmax,
				TimeConstS: *tau,
			},
			UseFloorplan: *useFloor,
			Governor:     gov,
		}); err != nil {
			fatal(err)
		}
	}
	if *notes {
		fmt.Fprintf(os.Stderr, "mcpat-trace: mapped %s (%s defaults) from %s:\n",
			res.CPUType, res.Preset, *configFile)
		for _, n := range res.Notes {
			fmt.Fprintf(os.Stderr, "  %-24s = %-12s %s\n", n.Field, n.Value, n.Source)
		}
	}

	tr, err := eng.Run(context.Background(), intervals, nil)
	if err != nil {
		fatal(err)
	}

	switch {
	case *asNDJSON:
		err = tr.WriteNDJSON(os.Stdout)
	case *asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		err = enc.Encode(tr)
	default:
		err = tr.WriteCSV(os.Stdout)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr,
		"mcpat-trace: %d intervals over %.6f s: %.3f J, avg %.3f W, peak %.3f W (interval %d)\n",
		tr.Summary.Intervals, tr.Summary.SimSeconds, tr.Summary.EnergyJ,
		tr.Summary.AvgW, tr.Summary.PeakW, tr.Summary.PeakIndex)
	if *thermalOn {
		fmt.Fprintf(os.Stderr,
			"mcpat-trace: thermal: max %.1f K, final %.1f K, %d/%d intervals throttled\n",
			tr.Summary.MaxTempK, tr.Summary.FinalTempK,
			tr.Summary.ThrottledIntervals, tr.Summary.Intervals)
	}
}

// fatal maps guard error kinds to the shared CLI exit codes (2=config,
// 3=infeasible/model-domain, 1=internal).
func fatal(err error) {
	cliutil.Fatal("mcpat-trace", err)
}
