// Command mcpat-m5 is the gem5/M5 bridge: it reads an XML chip
// configuration and a gem5-style stats.txt dump, converts the simulator's
// counters into runtime activity, and prints the combined TDP + runtime
// power report - the classic McPAT workflow with a performance simulator
// in the loop.
//
// Usage:
//
//	mcpat-m5 -infile chip.xml -stats stats.txt [-print_level N] [-json]
package main

import (
	"flag"
	"fmt"
	"os"

	"mcpat"
	"mcpat/internal/cliutil"
)

func main() {
	var (
		infile     = flag.String("infile", "", "XML chip configuration")
		statsFile  = flag.String("stats", "", "gem5/M5 stats.txt dump")
		printLevel = flag.Int("print_level", 1, "report depth (-1 = unlimited)")
		asJSON     = flag.Bool("json", false, "emit the report as JSON")
		interval   = flag.Int("interval", -1, "statistics dump to use (0-based; -1 = last)")
	)
	cacheDir, cacheSize := cliutil.CacheFlags(flag.CommandLine)
	flag.Parse()
	if closeCache := cliutil.EnablePersistentCache(*cacheDir, *cacheSize); closeCache != nil {
		defer closeCache()
	}
	if *infile == "" || *statsFile == "" {
		flag.Usage()
		cliutil.Usagef("mcpat-m5", "-infile and -stats are required")
	}

	cfg, _, err := mcpat.LoadXMLFile(*infile)
	if err != nil {
		fatal(err)
	}
	f, err := os.Open(*statsFile)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	dumps, err := mcpat.ParseM5StatsAll(f)
	if err != nil {
		fatal(err)
	}
	idx := *interval
	if idx < 0 {
		idx = len(dumps) - 1
	}
	stats, err := mcpat.M5ToStatsAt(dumps, idx, cfg.ClockHz, cfg.NumCores)
	if err != nil {
		fatal(err)
	}

	p, err := mcpat.New(cfg)
	if err != nil {
		fatal(err)
	}
	rep := p.Report(stats)

	if *asJSON {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Printf("McPAT + gem5 results for %s (%gnm, %.2f GHz)\n", cfg.Name, cfg.NM, cfg.ClockHz/1e9)
	fmt.Printf("  TDP           = %.3f W\n", rep.Peak())
	fmt.Printf("  Runtime power = %.3f W (dynamic %.3f W + leakage %.3f W)\n",
		rep.Runtime(), rep.RuntimeDynamic, rep.Leakage())
	fmt.Printf("  Die area      = %.2f mm^2\n\n", rep.Area*1e6)
	fmt.Print(rep.Format(*printLevel))
}

// fatal maps guard error kinds to the shared CLI exit codes (2=config,
// 3=infeasible/model-domain, 1=internal).
func fatal(err error) {
	cliutil.Fatal("mcpat-m5", err)
}
