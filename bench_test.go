package mcpat_test

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper's evaluation (see DESIGN.md section 3 for the experiment
// index). Each benchmark exercises the exact code path that regenerates
// the artifact and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` both measures modeling throughput and
// re-derives the paper's numbers. The same rows can be printed with
// cmd/mcpat-tables.

import (
	"math"
	"strings"
	"testing"

	"mcpat"
)

func validateTarget(b *testing.B, match string) *mcpat.ValidationResult {
	b.Helper()
	for _, t := range mcpat.ValidationTargets() {
		lower := strings.ToLower(t.Ref.Name)
		if match == "niagara" && strings.Contains(lower, "niagara2") {
			continue
		}
		if !strings.Contains(lower, match) {
			continue
		}
		var res *mcpat.ValidationResult
		var err error
		for i := 0; i < b.N; i++ {
			res, err = mcpat.Validate(t)
			if err != nil {
				b.Fatal(err)
			}
		}
		return res
	}
	b.Fatalf("no validation target matches %q", match)
	return nil
}

// BenchmarkTableSpecs regenerates T1: the specification table of the four
// validation processors.
func BenchmarkTableSpecs(b *testing.B) {
	var n int
	for i := 0; i < b.N; i++ {
		targets := mcpat.ValidationTargets()
		n = len(targets)
		for _, t := range targets {
			if t.Ref.TDP <= 0 || t.Ref.AreaMM2 <= 0 {
				b.Fatal("incomplete reference data")
			}
		}
	}
	b.ReportMetric(float64(n), "targets")
}

// BenchmarkTableNiagara regenerates T2 (Niagara power validation).
func BenchmarkTableNiagara(b *testing.B) {
	r := validateTarget(b, "niagara")
	b.ReportMetric(r.TDPMod, "modeled-W")
	b.ReportMetric(math.Abs(r.TDPErr), "TDP-err-%")
}

// BenchmarkTableNiagara2 regenerates T3 (Niagara2 power validation).
func BenchmarkTableNiagara2(b *testing.B) {
	r := validateTarget(b, "niagara2")
	b.ReportMetric(r.TDPMod, "modeled-W")
	b.ReportMetric(math.Abs(r.TDPErr), "TDP-err-%")
}

// BenchmarkTableAlpha regenerates T4 (Alpha 21364 power validation).
func BenchmarkTableAlpha(b *testing.B) {
	r := validateTarget(b, "alpha")
	b.ReportMetric(r.TDPMod, "modeled-W")
	b.ReportMetric(math.Abs(r.TDPErr), "TDP-err-%")
}

// BenchmarkTableXeon regenerates T5 (Xeon Tulsa power validation).
func BenchmarkTableXeon(b *testing.B) {
	r := validateTarget(b, "tulsa")
	b.ReportMetric(r.TDPMod, "modeled-W")
	b.ReportMetric(math.Abs(r.TDPErr), "TDP-err-%")
}

// BenchmarkTableArea regenerates T6 (die-area validation of all four).
func BenchmarkTableArea(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 0
		for _, t := range mcpat.ValidationTargets() {
			r, err := mcpat.Validate(t)
			if err != nil {
				b.Fatal(err)
			}
			worst = math.Max(worst, math.Abs(r.AreaErr))
		}
	}
	b.ReportMetric(worst, "worst-area-err-%")
}

// BenchmarkFigDeviceTypes regenerates F1 (HP/LSTP/LOP/long-channel sweep
// across nodes).
func BenchmarkFigDeviceTypes(b *testing.B) {
	var rows []mcpat.DeviceRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = mcpat.RunDeviceStudy(nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "design-points")
	// Headline trend: HP leakage fraction at the final node.
	for _, r := range rows {
		if r.NM == 22 && r.Device == mcpat.HP && !r.LongCh {
			b.ReportMetric(100*r.Leakage/r.TDP, "22nm-HP-leak-%")
		}
	}
}

func clusterSweep(b *testing.B) []mcpat.ClusterResult {
	b.Helper()
	var rs []mcpat.ClusterResult
	for i := 0; i < b.N; i++ {
		var err error
		rs, err = mcpat.RunClusterStudy(mcpat.DefaultStudyParams(), nil)
		if err != nil {
			b.Fatal(err)
		}
	}
	return rs
}

// BenchmarkFigClusterPerf regenerates F2 (performance vs clustering).
func BenchmarkFigClusterPerf(b *testing.B) {
	rs := clusterSweep(b)
	b.ReportMetric(rs[0].Perf/1e9, "cl1-GIPS")
	b.ReportMetric(100*rs[len(rs)-1].Perf/rs[0].Perf, "cl8-rel-perf-%")
}

// BenchmarkFigClusterPower regenerates F3 (runtime power breakdown).
func BenchmarkFigClusterPower(b *testing.B) {
	rs := clusterSweep(b)
	first, last := rs[0], rs[len(rs)-1]
	b.ReportMetric(first.RuntimeBreakdown["NoC"], "cl1-NoC-W")
	b.ReportMetric(last.RuntimeBreakdown["NoC"], "cl8-NoC-W")
}

// BenchmarkFigClusterArea regenerates F4 (area breakdown).
func BenchmarkFigClusterArea(b *testing.B) {
	rs := clusterSweep(b)
	b.ReportMetric(rs[0].Area, "cl1-mm2")
	b.ReportMetric(rs[len(rs)-1].Area, "cl8-mm2")
}

// BenchmarkFigClusterMetrics regenerates F5 (EDP/ED2P/EDAP/ED2AP).
func BenchmarkFigClusterMetrics(b *testing.B) {
	rs := clusterSweep(b)
	best := rs[0]
	for _, r := range rs[1:] {
		if r.ED2AP < best.ED2AP {
			best = r
		}
	}
	b.ReportMetric(float64(best.ClusterSize), "best-ED2AP-cluster")
	b.ReportMetric(best.ED2AP/rs[0].ED2AP, "best-ED2AP-rel")
}

// BenchmarkFigTechScaling regenerates F6 (best clustering per node).
func BenchmarkFigTechScaling(b *testing.B) {
	short := []mcpat.Workload{mcpat.SPLASH2LikeWorkloads()[0]}
	var rows []mcpat.TechRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = mcpat.RunTechStudy(nil, short)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "nodes")
	b.ReportMetric(float64(rows[len(rows)-1].BestCluster), "22nm-best-cluster")
}

// BenchmarkChipSynthesis measures raw model throughput: how fast a full
// 8-core chip is synthesized and reported (the operation every
// design-space-exploration loop repeats).
func BenchmarkChipSynthesis(b *testing.B) {
	cfg := mcpat.ValidationTargets()[0].Chip
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := mcpat.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if p.TDP() <= 0 {
			b.Fatal("bad TDP")
		}
	}
}

// BenchmarkColdChipSynthesis is BenchmarkChipSynthesis with both
// synthesis cache layers disabled: every iteration pays the full
// cold-path cost — array-optimizer enumeration (with lower-bound
// pruning) plus subsystem assembly on the worker pool. This is the
// number the cold-path optimizations move; the gap to
// BenchmarkChipSynthesis is the caches' contribution.
func BenchmarkColdChipSynthesis(b *testing.B) {
	prevArr := mcpat.SetArraySynthCache(false)
	prevSub := mcpat.SetSubsysSynthCache(false)
	defer func() {
		mcpat.SetArraySynthCache(prevArr)
		mcpat.SetSubsysSynthCache(prevSub)
	}()
	cfg := mcpat.ValidationTargets()[0].Chip
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p, err := mcpat.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if p.TDP() <= 0 {
			b.Fatal("bad TDP")
		}
	}
}

// BenchmarkCacheOptimizer measures the array optimizer on a 16MB LLC.
func BenchmarkCacheOptimizer(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c, err := mcpat.NewCache(32, 2.5e9, mcpat.HP, mcpat.CacheConfig{
			Name: "llc", Bytes: 16 << 20, BlockBytes: 64, Assoc: 16, Banks: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		if c.AccessTime() <= 0 {
			b.Fatal("bad access time")
		}
	}
}

// BenchmarkPerfSim measures the performance substrate.
func BenchmarkPerfSim(b *testing.B) {
	m := mcpat.Machine{
		Cores: 64, ThreadsPerCore: 4, IssueWidth: 1, ClockHz: 2.5e9,
		ClusterSize: 4, L2Latency: 16, FabricHopLat: 4, MemLatency: 150,
		MemBandwidth: 200e9,
	}
	w := mcpat.SPLASH2LikeWorkloads()[1]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := mcpat.Simulate(m, w); err != nil {
			b.Fatal(err)
		}
	}
}
