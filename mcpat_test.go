package mcpat_test

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"mcpat"
)

func smallConfig() mcpat.Config {
	return mcpat.Config{
		Name:     "api-test",
		NM:       45,
		ClockHz:  2e9,
		NumCores: 2,
		Core: mcpat.CoreConfig{
			Threads: 2,
			ICache:  mcpat.CacheParams{Bytes: 16 * 1024},
			DCache:  mcpat.CacheParams{Bytes: 16 * 1024},
			IntALUs: 1, FPUs: 1,
		},
		L2:  &mcpat.CacheConfig{Name: "L2", Bytes: 1 << 20, Banks: 2},
		NoC: mcpat.NoCSpec{Kind: mcpat.Bus, FlitBits: 128},
		MC:  &mcpat.MCConfig{Channels: 1, PeakBandwidth: 12e9, LVDS: true},
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	p, err := mcpat.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report(nil)
	if rep.Peak() <= 0 || rep.Area <= 0 {
		t.Fatal("invalid report totals")
	}
	if rep.Find("Cores") == nil || rep.Find("L2") == nil {
		t.Error("report tree missing components")
	}
}

func TestXMLRoundTripThroughAPI(t *testing.T) {
	cfg := smallConfig()
	var buf bytes.Buffer
	if err := mcpat.WriteXML(&buf, cfg); err != nil {
		t.Fatal(err)
	}
	got, _, err := mcpat.LoadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p1, err := mcpat.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := mcpat.New(got)
	if err != nil {
		t.Fatal(err)
	}
	if a, b := p1.TDP(), p2.TDP(); a != b {
		t.Errorf("XML round trip changed TDP: %v != %v", a, b)
	}
}

func TestLoadXMLErrors(t *testing.T) {
	if _, _, err := mcpat.LoadXML(strings.NewReader("nonsense")); err == nil {
		t.Error("garbage XML must fail")
	}
	if _, _, err := mcpat.LoadXMLFile("/nonexistent/file.xml"); err == nil {
		t.Error("missing file must fail")
	}
}

func TestValidationThroughAPI(t *testing.T) {
	targets := mcpat.ValidationTargets()
	if len(targets) != 4 {
		t.Fatalf("expected 4 validation targets, got %d", len(targets))
	}
	r, err := mcpat.Validate(targets[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.TDPMod <= 0 || len(r.Rows) == 0 {
		t.Error("validation result incomplete")
	}
}

func TestSimulateThroughAPI(t *testing.T) {
	sim, err := mcpat.Simulate(mcpat.Machine{
		Cores: 8, ThreadsPerCore: 4, ClockHz: 2e9,
		L2Latency: 16, MemLatency: 150, MemBandwidth: 50e9,
	}, mcpat.SPLASH2LikeWorkloads()[0])
	if err != nil {
		t.Fatal(err)
	}
	if sim.Runtime <= 0 || sim.CoreIPC <= 0 {
		t.Error("simulation incomplete")
	}
}

func TestStudyThroughAPI(t *testing.T) {
	cfg, err := mcpat.ManycoreConfig(mcpat.DefaultStudyParams(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.NumCores != 64 || cfg.NoC.ClusterSize != 4 {
		t.Errorf("unexpected manycore config: %+v", cfg.NoC)
	}
	if _, err := mcpat.ManycoreConfig(mcpat.DefaultStudyParams(), 5); err == nil {
		t.Error("invalid cluster size must fail")
	}
}

func TestNewCacheThroughAPI(t *testing.T) {
	c, err := mcpat.NewCache(45, 2e9, mcpat.HP, mcpat.CacheConfig{
		Name: "x", Bytes: 512 * 1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.AccessTime() <= 0 || c.Area <= 0 {
		t.Error("invalid cache synthesis")
	}
	if _, err := mcpat.NewCache(5, 2e9, mcpat.HP, mcpat.CacheConfig{Bytes: 1024}); err == nil {
		t.Error("unsupported node must fail")
	}
}

func TestThermalThroughAPI(t *testing.T) {
	res, err := mcpat.SolveThermal(smallConfig(), mcpat.PackageSpec{AmbientK: 318, RthetaJA: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.TjK <= 318 {
		t.Errorf("thermal solve failed: %+v", res)
	}
}

func TestDRAMThroughAPI(t *testing.T) {
	r, err := mcpat.DRAMChannelPower(
		mcpat.DRAMChannel{Device: mcpat.DDR3x1333(), DevicesPerRank: 8, Ranks: 1},
		mcpat.DRAMTraffic{ReadBytesPerSec: 2e9, RowHitRate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if r.Total <= 0 {
		t.Error("DRAM power must be positive")
	}
}

func TestTraceThroughAPI(t *testing.T) {
	r, err := mcpat.SimulateTrace(
		mcpat.CacheHierarchy{Cores: 2, L1Bytes: 16 << 10, L1Assoc: 2, BlockBytes: 64, L2Bytes: 1 << 20, L2Assoc: 8},
		mcpat.TraceConfig{Name: "api", Seed: 1, Threads: 2, AccessesPerThread: 10_000,
			LoadFrac: 0.25, StoreFrac: 0.1, SharedFrac: 0.1, WarmFrac: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Accesses == 0 || r.L1MissRate <= 0 {
		t.Errorf("trace result incomplete: %+v", r)
	}
	w := r.ToWorkload(1e8)
	if w.L1DMissRate != r.L1MissRate {
		t.Error("workload bridge must carry measured rates")
	}
}

func TestM5ThroughAPI(t *testing.T) {
	dump, err := mcpat.ParseM5Stats(strings.NewReader(
		"system.cpu.numCycles 1000 # c\nsystem.cpu.committedInsts 700 # n\n"))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := mcpat.M5ToStats(dump, 1e9, 1)
	if err != nil {
		t.Fatal(err)
	}
	if stats.CoreRun.Decode != 0.7 {
		t.Errorf("Decode = %v", stats.CoreRun.Decode)
	}
}

func TestDSEThroughAPI(t *testing.T) {
	res, err := mcpat.ExploreDesignSpace(
		mcpat.DSEParams{Workloads: []mcpat.Workload{mcpat.SPLASH2LikeWorkloads()[0]}},
		mcpat.DSESpace{Cores: []int{8}},
		mcpat.DSEConstraints{},
		mcpat.MaxPerfPerWatt)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best == nil {
		t.Fatal("DSE found nothing")
	}
}

func TestPresetsThroughAPI(t *testing.T) {
	if len(mcpat.Presets()) < 7 {
		t.Error("expected at least 7 presets")
	}
	if _, err := mcpat.PresetByName("niagara2"); err != nil {
		t.Error(err)
	}
}

func TestTimingAndJSONThroughAPI(t *testing.T) {
	p, err := mcpat.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.TimingReport()) == 0 {
		t.Error("timing report empty")
	}
	var buf bytes.Buffer
	if err := p.Report(nil).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "peak_total_w") {
		t.Error("JSON report missing fields")
	}
}

func TestFloorplanThroughAPI(t *testing.T) {
	// Floorplan the validation Niagara: 8 core tiles plus its L2 banks
	// and memory controllers on the edge.
	p, err := mcpat.New(mcpat.ValidationTargets()[0].Chip)
	if err != nil {
		t.Fatal(err)
	}
	rep := p.Report(nil)
	coreArea := rep.Find("Cores").Area / 8
	plan, err := mcpat.PlanFloor(
		mcpat.FloorplanBlock{Name: "core", Area: coreArea}, 8,
		[]mcpat.FloorplanBlock{
			{Name: "l2", Area: rep.Find("L2").Area, OnEdge: true},
			{Name: "mc", Area: rep.Find("MemoryController").Area, OnEdge: true},
		}, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Width <= 0 || plan.MeshWireLength() <= 0 {
		t.Errorf("degenerate floorplan: %+v", plan)
	}
	d, err := plan.Distance("core[0]", "core[7]")
	if err != nil || d <= 0 {
		t.Errorf("distance query failed: %v %v", d, err)
	}
}

func TestWriteXMLWithStats(t *testing.T) {
	cfg := smallConfig()
	stats := &mcpat.Stats{L2Reads: 1e9, MCAccesses: 2e8}
	var buf bytes.Buffer
	if err := mcpat.WriteXMLWithStats(&buf, cfg, stats); err != nil {
		t.Fatal(err)
	}
	got, gotStats, err := mcpat.LoadXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumCores != cfg.NumCores {
		t.Error("config lost in combined round trip")
	}
	if gotStats.L2Reads != 1e9 || gotStats.MCAccesses != 2e8 {
		t.Errorf("stats lost in combined round trip: %+v", gotStats)
	}
}

func TestErrorTaxonomyThroughAPI(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*mcpat.Config)
		kind error
	}{
		{"bad node", func(c *mcpat.Config) { c.NM = 5 }, mcpat.ErrConfig},
		{"nan node", func(c *mcpat.Config) { c.NM = math.NaN() }, mcpat.ErrConfig},
		{"no cores", func(c *mcpat.Config) { c.NumCores = 0 }, mcpat.ErrConfig},
	}
	for _, tc := range cases {
		cfg := smallConfig()
		tc.mut(&cfg)
		_, err := mcpat.New(cfg)
		if err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
			continue
		}
		if !errors.Is(err, tc.kind) {
			t.Errorf("%s: error %v does not wrap expected kind", tc.name, err)
		}
	}
}

func TestCheckReportThroughAPI(t *testing.T) {
	p, err := mcpat.New(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds := mcpat.CheckReport(p.Report(nil)); len(ds) != 0 {
		t.Fatalf("healthy chip must pass the sanity guard: %v", ds)
	}
	bad := p.Report(nil)
	bad.PeakDynamic = math.Inf(1)
	if ds := mcpat.CheckReport(bad); len(ds) == 0 {
		t.Fatal("Inf peak power must be flagged")
	}
}

func TestExploreContextThroughAPI(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := mcpat.ExploreDesignSpaceContext(ctx,
		mcpat.DSEParams{NM: 22, ClockHz: 2.5e9, Threads: 4},
		mcpat.DSESpace{Cores: []int{16}},
		mcpat.DSEConstraints{}, mcpat.MaxThroughput, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil || res.Evaluated != 0 {
		t.Fatalf("cancelled sweep must return the empty partial result: %+v", res)
	}
	var fail mcpat.DSEFailure
	_ = fail // the failure type is part of the public surface
}
