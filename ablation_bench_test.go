package mcpat_test

// Ablation benchmarks: each one isolates a design choice DESIGN.md calls
// out and reports the quantitative effect as custom metrics, so
// `go test -bench=Ablation` documents the sensitivity of the models.

import (
	"testing"

	"mcpat"
	"mcpat/internal/array"
	"mcpat/internal/tech"
	"mcpat/internal/tech/techtest"
)

// BenchmarkAblationWireProjection compares the chip fabric under the
// aggressive vs conservative interconnect projections (the McPAT input
// that brackets wire-technology uncertainty).
func BenchmarkAblationWireProjection(b *testing.B) {
	base, err := mcpat.ManycoreConfig(mcpat.DefaultStudyParams(), 1)
	if err != nil {
		b.Fatal(err)
	}
	var agg, cons float64
	for i := 0; i < b.N; i++ {
		a := base
		a.WireProjection = tech.Aggressive
		pa, err := mcpat.New(a)
		if err != nil {
			b.Fatal(err)
		}
		agg = pa.Report(nil).Find("NoC").Peak()

		c := base
		c.WireProjection = tech.Conservative
		pc, err := mcpat.New(c)
		if err != nil {
			b.Fatal(err)
		}
		cons = pc.Report(nil).Find("NoC").Peak()
	}
	b.ReportMetric(agg, "aggressive-NoC-W")
	b.ReportMetric(cons, "conservative-NoC-W")
	if cons <= agg {
		b.Fatal("conservative wires must cost more fabric power")
	}
}

// BenchmarkAblationArrayObjective runs the array optimizer on the same
// 2MB cache under each optimization objective and reports the spread -
// the internal-optimizer design choice.
func BenchmarkAblationArrayObjective(b *testing.B) {
	node := techtest.Node(32)
	mk := func(obj array.Objective) *array.Result {
		return mustArray(array.Config{
			Name: "abl", Tech: node, Periph: tech.HP, Cell: tech.HP,
			Bytes: 2 << 20, BlockBits: 512, Assoc: 8, Obj: obj,
		})
	}
	var fast, small, balanced *array.Result
	for i := 0; i < b.N; i++ {
		fast = mk(array.OptDelay)
		small = mk(array.OptArea)
		balanced = mk(array.OptED2)
	}
	b.ReportMetric(fast.AccessTime*1e9, "delay-opt-ns")
	b.ReportMetric(small.AccessTime*1e9, "area-opt-ns")
	b.ReportMetric(small.Area/fast.Area, "area-ratio")
	if balanced.AccessTime < fast.AccessTime || balanced.Area < small.Area {
		b.Fatal("ED2 objective must sit between the extremes")
	}
}

// BenchmarkAblationCacheAccessMode compares parallel vs sequential
// tag/data access of an L1-class cache.
func BenchmarkAblationCacheAccessMode(b *testing.B) {
	node := techtest.Node(45)
	mk := func(sequential bool) *array.Result {
		s := sequential
		return mustArray(array.Config{
			Name: "l1", Tech: node, Periph: tech.HP, Cell: tech.HP,
			Bytes: 32 << 10, BlockBits: 512, Assoc: 4, Sequential: &s,
		})
	}
	var par, seq *array.Result
	for i := 0; i < b.N; i++ {
		par = mk(false)
		seq = mk(true)
	}
	b.ReportMetric(par.AccessTime*1e9, "parallel-ns")
	b.ReportMetric(seq.AccessTime*1e9, "sequential-ns")
	b.ReportMetric(seq.Energy.Read/par.Energy.Read, "seq-energy-ratio")
}

// BenchmarkAblationInterconnectKind builds the same 16-core chip with
// each fabric and reports the fabric power of each - the case study's
// central design axis, isolated.
func BenchmarkAblationInterconnectKind(b *testing.B) {
	kinds := []struct {
		kind mcpat.InterconnectKind
		name string
	}{
		{mcpat.Bus, "bus"},
		{mcpat.Crossbar, "crossbar"},
		{mcpat.Mesh, "mesh"},
		{mcpat.Ring, "ring"},
	}
	results := map[string]float64{}
	for i := 0; i < b.N; i++ {
		for _, k := range kinds {
			cfg := mcpat.Config{
				Name: "abl-ic", NM: 32, ClockHz: 2e9, NumCores: 16,
				Core: mcpat.CoreConfig{Threads: 2, IntALUs: 1,
					ICache: mcpat.CacheParams{Bytes: 16 << 10},
					DCache: mcpat.CacheParams{Bytes: 16 << 10}},
				L2:  &mcpat.CacheConfig{Name: "L2", Bytes: 8 << 20, Banks: 16},
				NoC: mcpat.NoCSpec{Kind: k.kind, FlitBits: 128, MeshX: 4, MeshY: 4, VirtualChannels: 2, BuffersPerVC: 4},
			}
			p, err := mcpat.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			rep := p.Report(nil)
			for _, name := range []string{"Bus", "Crossbar", "NoC", "Ring"} {
				if f := rep.Find(name); f != nil {
					results[k.name] = f.Peak()
				}
			}
		}
	}
	for name, w := range results {
		b.ReportMetric(w, name+"-W")
	}
}

// BenchmarkAblationLongChannel isolates the long-channel device option on
// the Niagara validation chip.
func BenchmarkAblationLongChannel(b *testing.B) {
	base := mcpat.ValidationTargets()[0].Chip
	var std, lc float64
	for i := 0; i < b.N; i++ {
		ps, err := mcpat.New(base)
		if err != nil {
			b.Fatal(err)
		}
		std = ps.Leakage()
		c := base
		c.LongChannel = true
		pl, err := mcpat.New(c)
		if err != nil {
			b.Fatal(err)
		}
		lc = pl.Leakage()
	}
	b.ReportMetric(std, "std-leak-W")
	b.ReportMetric(lc, "longch-leak-W")
	if lc >= std {
		b.Fatal("long channel must cut leakage")
	}
}

// BenchmarkAblationPowerGating isolates the power-gating option at 50%
// pipeline duty.
func BenchmarkAblationPowerGating(b *testing.B) {
	mk := func(gated bool) (runtime float64) {
		cfg := mcpat.ValidationTargets()[0].Chip
		cfg.Core.PowerGating = gated
		p, err := mcpat.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		stats := &mcpat.Stats{CoreRun: p.CorePeakActivity().Scale(0.5)}
		rep := p.Report(stats)
		return rep.Runtime()
	}
	var plain, gated float64
	for i := 0; i < b.N; i++ {
		plain = mk(false)
		gated = mk(true)
	}
	b.ReportMetric(plain, "ungated-W")
	b.ReportMetric(gated, "gated-W")
	if gated >= plain {
		b.Fatal("power gating must reduce runtime power at 50% duty")
	}
}

// BenchmarkAblationEDRAMvsSRAM isolates the LLC cell choice.
func BenchmarkAblationEDRAMvsSRAM(b *testing.B) {
	mk := func(edram bool) *mcpat.Cache {
		c, err := mcpat.NewCache(32, 2e9, mcpat.HP, mcpat.CacheConfig{
			Name: "llc", Bytes: 16 << 20, BlockBytes: 64, Assoc: 16, Banks: 8,
			EDRAM: edram,
		})
		if err != nil {
			b.Fatal(err)
		}
		return c
	}
	var sram, edram *mcpat.Cache
	for i := 0; i < b.N; i++ {
		sram = mk(false)
		edram = mk(true)
	}
	b.ReportMetric(sram.Area*1e6, "sram-mm2")
	b.ReportMetric(edram.Area*1e6, "edram-mm2")
	b.ReportMetric(edram.AccessTime()/sram.AccessTime(), "edram-latency-ratio")
}

// mustArray is the benchmark-only panicking variant of array.New.
func mustArray(cfg array.Config) *array.Result {
	r, err := array.New(cfg)
	if err != nil {
		panic(err)
	}
	return r
}
