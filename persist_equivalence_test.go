package mcpat_test

// Bit-identity contract for the persistent (disk) synthesis cache at the
// whole-chip level: for every validation target, a report assembled from
// disk-hydrated parts — fresh process simulated by dropping both memory
// tiers between passes — must be byte-for-byte equal to one produced
// with all caching disabled. A third pass corrupts every on-disk entry
// and asserts the fallback to cold synthesis is equally bit-identical.

import (
	"reflect"
	"testing"

	"mcpat"
	"mcpat/internal/persist"
	"mcpat/internal/persist/faultfs"
)

// installDiskTier opens a store in a temp dir, makes it the process
// default, and restores the previous state (including cold memory
// tiers) when the test ends.
func installDiskTier(t *testing.T) *persist.Store {
	t.Helper()
	s, err := persist.Open(persist.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatalf("persist.Open: %v", err)
	}
	prev := persist.SetDefault(s)
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	t.Cleanup(func() {
		persist.SetDefault(prev)
		s.Close()
		mcpat.ResetArraySynthCache()
		mcpat.ResetSubsysSynthCache()
	})
	return s
}

func TestDiskHydratedReportsBitIdentical(t *testing.T) {
	ref := uncachedReports(t)
	store := installDiskTier(t)

	// Pass 1: cold — populates memory tiers and the disk store.
	for _, target := range mcpat.ValidationTargets() {
		res, err := mcpat.Validate(target)
		if err != nil {
			t.Fatalf("%s populate: %v", target.Ref.Name, err)
		}
		if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
			t.Fatalf("%s: populating report differs from uncached reference", target.Ref.Name)
		}
	}
	base := store.Stats()
	if base.Entries == 0 {
		t.Fatal("populating pass published no disk entries")
	}

	// Pass 2: simulate a process restart — memory cold, disk warm.
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	for _, target := range mcpat.ValidationTargets() {
		res, err := mcpat.Validate(target)
		if err != nil {
			t.Fatalf("%s hydrate: %v", target.Ref.Name, err)
		}
		if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
			t.Errorf("%s: disk-hydrated report differs from uncached reference", target.Ref.Name)
		}
	}
	d := store.Stats().Delta(base)
	if d.Hits == 0 {
		t.Fatal("restart pass never hit the disk tier")
	}
	if d.Corrupt != 0 {
		t.Fatalf("restart pass quarantined %d entries from a clean store", d.Corrupt)
	}
	// The restart should be overwhelmingly disk-served: the acceptance
	// bar for warm restarts is a >90% disk hit rate.
	if hr := d.HitRate(); hr < 0.9 {
		t.Errorf("warm-restart disk hit rate %.1f%% below 90%%", hr*100)
	}

	// Pass 3: corrupt every entry; reports still bit-identical via cold
	// synthesis, corruption quarantined.
	paths, err := faultfs.Entries(store.Dir())
	if err != nil || len(paths) == 0 {
		t.Fatalf("no entries to corrupt (%v)", err)
	}
	for i, p := range paths {
		var err error
		switch i % 3 {
		case 0:
			err = faultfs.FlipBit(p)
		case 1:
			err = faultfs.Truncate(p)
		default:
			err = faultfs.Scribble(p)
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	for _, target := range mcpat.ValidationTargets() {
		res, err := mcpat.Validate(target)
		if err != nil {
			t.Fatalf("%s with corrupt store: %v", target.Ref.Name, err)
		}
		if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
			t.Errorf("%s: report after store corruption differs from uncached reference", target.Ref.Name)
		}
	}
	if store.Stats().Corrupt == 0 {
		t.Error("corrupted entries were never quarantined")
	}
}
