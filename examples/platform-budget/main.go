// Platform-budget example: assemble a full platform power picture around
// the chip - the thermally self-consistent chip TDP (leakage depends on
// junction temperature, which depends on power and the heatsink), plus
// the off-chip DRAM channels evaluated with the IDD datasheet
// methodology. This is the system-level accounting McPAT users do around
// the core tool.
package main

import (
	"fmt"
	"log"

	"mcpat"
)

func main() {
	// The Niagara-class validation chip with its 4 DDR2 channels.
	target := mcpat.ValidationTargets()[0]
	cfg := target.Chip

	// 1. Thermal fixed point under two cooling solutions.
	fmt.Println("=== chip: thermally self-consistent TDP ===")
	for _, pkg := range []struct {
		name string
		spec mcpat.PackageSpec
	}{
		{"server heatsink (0.25 K/W)", mcpat.PackageSpec{AmbientK: 318, RthetaJA: 0.25, MaxTjK: 378}},
		{"constrained 1U   (0.60 K/W)", mcpat.PackageSpec{AmbientK: 318, RthetaJA: 0.60, MaxTjK: 378}},
	} {
		res, err := mcpat.SolveThermal(cfg, pkg.spec)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if res.OverLimit {
			status = "OVER Tj LIMIT"
		}
		fmt.Printf("%-28s Tj=%.0f C  TDP=%.1f W  leakage=%.1f W  (%d iters, %s)\n",
			pkg.name, res.TjK-273, res.TDP, res.Leakage, res.Iterations, status)
	}

	// 2. DRAM: four DDR2-800 channels at a memory-bound operating point.
	fmt.Println("\n=== memory: 4x DDR2-800 channels (IDD model) ===")
	perChannelRead, perChannelWrite := 3.5e9, 1.5e9 // bytes/s
	total := 0.0
	ch := mcpat.DRAMChannel{Device: mcpat.DDR2x800(), DevicesPerRank: 8, Ranks: 2}
	r, err := mcpat.DRAMChannelPower(ch, mcpat.DRAMTraffic{
		ReadBytesPerSec:  perChannelRead,
		WriteBytesPerSec: perChannelWrite,
		RowHitRate:       0.55,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per channel @ %.1f GB/s: %.2f W  [bg %.2f, act/pre %.2f, bursts %.2f, refresh %.2f, term %.2f]\n",
		(perChannelRead+perChannelWrite)/1e9, r.Total,
		r.Background, r.ActPre, r.ReadBurst+r.WriteBurst, r.Refresh, r.Termination)
	total = 4 * r.Total

	// 3. The platform picture.
	th, err := mcpat.SolveThermal(cfg, mcpat.PackageSpec{AmbientK: 318, RthetaJA: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n=== platform budget ===")
	fmt.Printf("chip (thermally converged) %.1f W\n", th.TDP)
	fmt.Printf("DRAM (4 channels)          %.1f W\n", total)
	fmt.Printf("platform silicon+memory    %.1f W\n", th.TDP+total)
}
