// DVFS-throttle example: the closed power/thermal/DVFS loop over the
// checked-in gem5 trace. Each interval's power heats a floorplan-derived
// lumped thermal model; the hotspot temperature feeds the next
// interval's leakage retune (temperature is a Score-time input — the
// chip is synthesized exactly once) and a thermal-headroom governor that
// sheds frequency and voltage when the junction limit approaches. The
// same trace is run three ways so the feedback is visible: open loop,
// closed loop without a governor (the chip runs hot), and closed loop
// with the governor (throttled intervals trade performance for
// temperature).
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"mcpat"
)

func runTrace(eng *mcpat.TraceEngine, ivs []mcpat.TraceInterval) *mcpat.PowerTrace {
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		log.Fatal(err)
	}
	return tr
}

func main() {
	cfgF, err := os.Open("examples/gem5-trace/config.json")
	if err != nil {
		log.Fatal(err)
	}
	defer cfgF.Close()
	statsF, err := os.Open("examples/gem5-trace/stats.txt")
	if err != nil {
		log.Fatal(err)
	}
	defer statsF.Close()
	eng, ivs, res, err := mcpat.TraceFromGem5(cfgF, statsF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %d cores @ %.1f GHz, %d intervals\n\n",
		res.Config.NumCores, res.Config.ClockHz/1e9, len(ivs))

	// A deliberately constrained cooling solution so the short example
	// trace actually crosses the junction limit.
	pkg := mcpat.PackageSpec{
		RthetaJA:   0.8,  // K/W — a small passive heatsink
		AmbientK:   318,  // 45 C inside the chassis
		MaxTjK:     360,  // 87 C junction limit
		TimeConstS: 5e-4, // package RC: comparable to the 1 ms intervals
	}

	// 1. Open loop: the classic trace, leakage at the reference
	// temperature, nominal frequency throughout.
	open := runTrace(eng, ivs)
	fmt.Println("=== open loop (reference temperature, nominal clock) ===")
	for _, s := range open.Samples {
		fmt.Printf("  interval %d: %6.2f W\n", s.Index, s.TotalW)
	}

	// 2. Closed loop, no governor: power heats the floorplan blocks and
	// the hotspot inflates leakage, but nothing pushes back.
	if err := eng.EnableLoop(mcpat.TraceLoopOptions{
		Package:      pkg,
		UseFloorplan: true,
	}); err != nil {
		log.Fatal(err)
	}
	hot := runTrace(eng, ivs)
	fmt.Println("\n=== closed loop, no governor (thermal feedback only) ===")
	for _, s := range hot.Samples {
		over := ""
		if s.TemperatureK > pkg.MaxTjK {
			over = "  << over Tj limit"
		}
		fmt.Printf("  interval %d: %6.2f W  hotspot %.1f K%s\n",
			s.Index, s.TotalW, s.TemperatureK, over)
	}
	fmt.Printf("  max %.1f K against a %.0f K limit\n", hot.Summary.MaxTempK, pkg.MaxTjK)

	// 3. Closed loop with the thermal-headroom governor: proportional
	// frequency shedding toward a setpoint 5 K under the limit, supply
	// voltage following a linear V-f rule.
	gov, err := mcpat.NewGovernor("headroom", 0, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := eng.EnableLoop(mcpat.TraceLoopOptions{
		Package:      pkg,
		UseFloorplan: true,
		Governor:     gov,
	}); err != nil {
		log.Fatal(err)
	}
	gv := runTrace(eng, ivs)
	fmt.Println("\n=== closed loop + headroom governor ===")
	for _, s := range gv.Samples {
		mark := ""
		if s.Throttled {
			mark = fmt.Sprintf("  << throttled to %.2f GHz", s.FreqHz/1e9)
		}
		fmt.Printf("  interval %d: %6.2f W  hotspot %.1f K%s\n",
			s.Index, s.TotalW, s.TemperatureK, mark)
	}
	fmt.Printf("  max %.1f K, %d/%d intervals throttled\n",
		gv.Summary.MaxTempK, gv.Summary.ThrottledIntervals, len(gv.Samples))

	// The loop ran against exactly one chip synthesis: every interval of
	// all three traces was a pure Score pass.
	fmt.Printf("\nsynthesis count: chip built once; %d intervals scored across 3 runs\n",
		3*len(ivs))
}
