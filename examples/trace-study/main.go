// Trace-study example: the full-fidelity pipeline. A synthetic parallel
// program is run through the trace-driven cache simulator (set-associative
// LRU caches, MSI coherence), the *measured* miss and sharing rates feed
// the contention-aware analytical performance model, and its statistics
// drive the power models - program behavior to watts, end to end, with no
// assumed miss rates anywhere.
package main

import (
	"fmt"
	"log"

	"mcpat"
)

func main() {
	const (
		cores   = 16
		threads = 16
		clock   = 2.0e9
	)

	// 1. Describe the program's memory behavior and trace it through the
	// cache hierarchy.
	tc := mcpat.TraceConfig{
		Name: "blocked-solver", Seed: 7,
		Threads:           threads,
		AccessesPerThread: 100_000,
		LoadFrac:          0.27, StoreFrac: 0.11,
		BranchFrac: 0.12, FPFrac: 0.30,
		HotSetBytes: 16 << 10, WarmSetBytes: 256 << 10, SharedBytes: 512 << 10,
		SharedFrac: 0.12, WarmFrac: 0.18, StreamFrac: 0.04,
		BaseCPI: 1.1,
	}
	hier := mcpat.CacheHierarchy{
		Cores: cores, ThreadsPerCore: 1,
		L1Bytes: 32 << 10, L1Assoc: 4, BlockBytes: 64,
		L2Bytes: 8 << 20, L2Assoc: 8, L2Banks: cores,
	}
	traced, err := mcpat.SimulateTrace(hier, tc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== trace simulation (%d accesses) ===\n", traced.Accesses)
	fmt.Printf("L1 miss rate %.3f   L2 miss rate %.3f\n", traced.L1MissRate, traced.L2MissRate)
	fmt.Printf("coherence: %d invalidations, %d cache-to-cache transfers, %d write-backs, %d inclusion victims\n\n",
		traced.Invalidations, traced.C2CTransfers, traced.WriteBacks, traced.BackInvalidations)

	// 2. Feed the measured rates into the contention-aware performance
	// model.
	w := traced.ToWorkload(5e9)
	sim, err := mcpat.Simulate(mcpat.Machine{
		Cores: cores, ThreadsPerCore: 1, IssueWidth: 1, ClockHz: clock,
		L2Latency: 18, FabricHopLat: 4, MemLatency: 120,
		MemBandwidth: 100e9,
	}, w)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== performance model ===\n")
	fmt.Printf("IPC/core %.2f   throughput %.1f GIPS   runtime %.1f ms\n\n",
		sim.CoreIPC, sim.Throughput/1e9, sim.Runtime*1e3)

	// 3. Build the chip and compute runtime power from the simulated
	// statistics.
	cfg := mcpat.Config{
		Name: "trace-study-chip", NM: 32, ClockHz: clock, NumCores: cores,
		Core: mcpat.CoreConfig{
			ICache:  mcpat.CacheParams{Bytes: 32 << 10, BlockBytes: 64, Assoc: 4},
			DCache:  mcpat.CacheParams{Bytes: 32 << 10, BlockBytes: 64, Assoc: 4},
			IntALUs: 1, FPUs: 1,
		},
		L2: &mcpat.CacheConfig{Name: "L2", Bytes: 8 << 20, Banks: cores,
			Directory: true, Sharers: cores},
		NoC: mcpat.NoCSpec{Kind: mcpat.Mesh, FlitBits: 128, MeshX: 4, MeshY: 4,
			VirtualChannels: 2, BuffersPerVC: 4},
		MC: &mcpat.MCConfig{Channels: 2, PeakBandwidth: 100e9, LVDS: true},
	}
	p, err := mcpat.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	stats := &mcpat.Stats{
		CoreRun:    sim.CoreActivity,
		L2Reads:    sim.L2ReadsSec,
		L2Writes:   sim.L2WritesSec,
		NoCFlits:   sim.FabricFlits,
		MCAccesses: sim.MemAccessesS,
	}
	rep := p.Report(stats)
	fmt.Printf("=== power (McPAT) ===\n")
	fmt.Printf("TDP %.1f W   runtime %.1f W   energy for the problem %.2f J\n",
		rep.Peak(), rep.Runtime(), rep.Runtime()*sim.Runtime)
	for _, name := range []string{"Cores", "L2", "NoC", "MemoryController", "ClockNetwork"} {
		if n := rep.Find(name); n != nil {
			fmt.Printf("  %-18s %6.2f W\n", name, n.Runtime())
		}
	}
}
