// Cache-explorer example: drive the memory-array model and its internal
// optimizer directly to explore a last-level-cache design space - the
// CACTI-style capability McPAT builds on. Sweeps capacity, associativity,
// and banking at 32 nm and prints access time, per-access energy, leakage,
// and area for each point.
package main

import (
	"fmt"
	"log"

	"mcpat"
)

func main() {
	const (
		nm    = 32.0
		clock = 2.5e9
	)
	fmt.Printf("LLC design space at %gnm, %.1f GHz target (internal optimizer picks the organization)\n\n", nm, clock/1e9)
	fmt.Printf("%8s %6s %6s %10s %12s %12s %10s\n",
		"size", "assoc", "banks", "access ns", "E/read nJ", "leakage W", "area mm2")

	for _, mb := range []int{1, 2, 4, 8, 16} {
		for _, assoc := range []int{4, 16} {
			for _, banks := range []int{1, 4} {
				c, err := mcpat.NewCache(nm, clock, mcpat.HP, mcpat.CacheConfig{
					Name:  fmt.Sprintf("llc-%dmb-%dw-%db", mb, assoc, banks),
					Bytes: mb << 20, BlockBytes: 64,
					Assoc: assoc, Banks: banks,
				})
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("%6dMB %6d %6d %10.2f %12.2f %12.3f %10.2f\n",
					mb, assoc, banks,
					c.AccessTime()*1e9,
					c.Energy.Read*1e9,
					c.Static.Total(),
					c.Area*1e6)
			}
		}
	}

	fmt.Println("\nTrade-offs to observe:")
	fmt.Println(" * capacity grows area ~linearly and access time sublinearly")
	fmt.Println(" * banking cuts cycle time at an area cost")
	fmt.Println(" * >=1MB caches default to low-leakage (LSTP) cells; leakage stays flat")
	fmt.Println(" * higher associativity costs access energy (wider tag match)")
}
