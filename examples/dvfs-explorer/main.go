// DVFS-explorer example: sweep the supply voltage of a chip around its
// nominal operating point and report the voltage/frequency/power curve -
// McPAT's voltage-scaling capability applied to a Niagara-class part.
// The frequency follows the alpha-power law; dynamic power tracks V^2 f
// while leakage tracks V, so energy per cycle has a broad minimum below
// the nominal point.
package main

import (
	"fmt"
	"log"

	"mcpat"
)

func main() {
	// Start from the Niagara validation target and scan its voltage.
	cfg := mcpat.ValidationTargets()[0].Chip
	fmt.Printf("DVFS scan of %s (nominal %.2f V, %.2f GHz)\n\n",
		cfg.Name, cfg.Vdd, cfg.ClockHz/1e9)

	points, err := mcpat.VFScan(cfg, []float64{0.7, 0.8, 0.9, 1.0, 1.1})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%8s %10s %10s %12s %12s %14s\n",
		"Vdd V", "clock GHz", "TDP W", "dynamic W", "leakage W", "energy/cyc nJ")
	bestIdx := 0
	for i, pt := range points {
		fmt.Printf("%8.2f %10.2f %10.1f %12.1f %12.2f %14.2f\n",
			pt.Vdd, pt.ClockHz/1e9, pt.TDP, pt.Dynamic, pt.Leakage, pt.EnergyPerCycle*1e9)
		if pt.EnergyPerCycle < points[bestIdx].EnergyPerCycle {
			bestIdx = i
		}
	}
	fmt.Printf("\nMost energy-efficient point: %.2f V at %.2f GHz (%.2f nJ/cycle)\n",
		points[bestIdx].Vdd, points[bestIdx].ClockHz/1e9, points[bestIdx].EnergyPerCycle*1e9)
	fmt.Println("Shape to observe: dynamic power falls ~V^3 while frequency falls")
	fmt.Println("~linearly in overdrive, so the low-voltage points win energy per cycle")
	fmt.Println("until leakage (which only falls ~linearly) starts to dominate.")
}
