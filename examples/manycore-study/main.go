// Manycore-study example: run the paper's case study end to end - sweep
// the cluster size of a 64-core 22 nm CMP, combine the bundled
// performance model with the power/area models, and report the
// performance/power/efficiency trade-off that motivates clustered
// interconnects in the manycore era.
package main

import (
	"fmt"
	"log"

	"mcpat"
)

func main() {
	params := mcpat.DefaultStudyParams()
	fmt.Printf("Manycore interconnect case study: %d cores @ %gnm, %.1f GHz\n",
		params.Cores, params.NM, params.ClockHz/1e9)

	results, err := mcpat.RunClusterStudy(params, mcpat.SPLASH2LikeWorkloads())
	if err != nil {
		log.Fatal(err)
	}

	base := results[0]
	fmt.Printf("\n%8s %8s %10s %10s %10s %10s %10s %10s\n",
		"cluster", "mesh", "perf", "TDP W", "run W", "NoC W", "EDP", "ED2AP")
	var best mcpat.ClusterResult
	for i, r := range results {
		fmt.Printf("%8d %5dx%-2d %9.3fx %10.1f %10.1f %10.2f %10.3f %10.3f\n",
			r.ClusterSize, r.MeshX, r.MeshY,
			r.Perf/base.Perf, r.TDP, r.AvgPower,
			r.RuntimeBreakdown["NoC"],
			r.EDP/base.EDP, r.ED2AP/base.ED2AP)
		if i == 0 || r.ED2AP < best.ED2AP {
			best = r
		}
	}

	fmt.Printf("\nConclusions (compare with the paper's case study):\n")
	fmt.Printf(" * clustering cuts the interconnect's runtime power %.1fx (cl=1 -> cl=8)\n",
		base.RuntimeBreakdown["NoC"]/results[len(results)-1].RuntimeBreakdown["NoC"])
	fmt.Printf(" * performance holds within %.1f%% until the cluster bus saturates\n",
		(1-results[2].Perf/base.Perf)*100)
	fmt.Printf(" * the ED2AP-optimal design clusters %d cores per shared L2 slice\n",
		best.ClusterSize)
}
