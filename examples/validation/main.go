// Validation example: reproduce the paper's validation section by
// synthesizing the four target processors (Niagara, Niagara2, Alpha 21364,
// Xeon Tulsa) and comparing modeled power and area against the published
// reference data, printing per-component error tables.
package main

import (
	"fmt"
	"log"
	"math"

	"mcpat"
)

func main() {
	fmt.Println("McPAT validation against the four published processors")
	fmt.Println("(reference component splits are reconstructed; see EXPERIMENTS.md)")

	var worstTDP, worstArea float64
	for _, target := range mcpat.ValidationTargets() {
		r, err := mcpat.Validate(target)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n--- %s @ %gnm, %.2f GHz, %.2f V ---\n",
			target.Ref.Name, target.Ref.TechNM, target.Ref.ClockHz/1e9, target.Ref.Vdd)
		for _, row := range r.Rows {
			fmt.Printf("  %-26s published %6.1f W   modeled %6.1f W   (%+.1f%%)\n",
				row.Component, row.Published, row.Modeled, row.ErrPct)
		}
		fmt.Printf("  %-26s published %6.1f W   modeled %6.1f W   (%+.1f%%)\n",
			"TOTAL TDP", r.TDPPub, r.TDPMod, r.TDPErr)
		fmt.Printf("  %-26s published %6.1f mm2 modeled %6.1f mm2 (%+.1f%%)\n",
			"DIE AREA", r.AreaPub, r.AreaMod, r.AreaErr)
		worstTDP = math.Max(worstTDP, math.Abs(r.TDPErr))
		worstArea = math.Max(worstArea, math.Abs(r.AreaErr))
	}
	fmt.Printf("\nWorst-case errors: TDP %.1f%%, area %.1f%% ", worstTDP, worstArea)
	fmt.Println("(the paper reports validation errors of roughly 10-25%)")
}
