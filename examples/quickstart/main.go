// Quickstart: build a small multicore chip, print its TDP power/area
// report, then feed runtime statistics from the bundled performance model
// and print the runtime power - the complete McPAT workflow in ~60 lines.
package main

import (
	"fmt"
	"log"

	"mcpat"
)

func main() {
	// A 4-core, 2-thread in-order CMP at 45 nm with a banked shared L2
	// and a flat crossbar, like a small Niagara-class part.
	cfg := mcpat.Config{
		Name:     "quickstart-cmp",
		NM:       45,
		ClockHz:  2.0e9,
		NumCores: 4,
		Core: mcpat.CoreConfig{
			Threads: 2,
			ICache:  mcpat.CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 4},
			DCache:  mcpat.CacheParams{Bytes: 16 * 1024, BlockBytes: 32, Assoc: 4},
			IntALUs: 1, FPUs: 1, MulDivs: 1,
		},
		L2:  &mcpat.CacheConfig{Name: "L2", Bytes: 2 << 20, BlockBytes: 64, Assoc: 8, Banks: 4},
		NoC: mcpat.NoCSpec{Kind: mcpat.Crossbar, FlitBits: 128},
		MC:  &mcpat.MCConfig{Channels: 2, PeakBandwidth: 25e9, LVDS: true},
	}

	p, err := mcpat.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Peak (TDP) analysis needs no statistics.
	rep := p.Report(nil)
	fmt.Printf("=== %s: TDP analysis ===\n", cfg.Name)
	fmt.Printf("TDP  = %.2f W  (dynamic %.2f W, leakage %.2f W)\n",
		rep.Peak(), rep.PeakDynamic, rep.Leakage())
	fmt.Printf("Area = %.2f mm^2\n\n", rep.Area*1e6)
	fmt.Print(rep.Format(1))

	// 2. Runtime analysis: get statistics from the bundled performance
	// model (any external simulator works through the same interface).
	sim, err := mcpat.Simulate(mcpat.Machine{
		Cores: 4, ThreadsPerCore: 2, IssueWidth: 1,
		ClockHz: cfg.ClockHz, L2Latency: 16, MemLatency: 150,
		MemBandwidth: 25e9,
	}, mcpat.SPLASH2LikeWorkloads()[0])
	if err != nil {
		log.Fatal(err)
	}
	stats := &mcpat.Stats{
		CoreRun:    sim.CoreActivity,
		L2Reads:    sim.L2ReadsSec,
		L2Writes:   sim.L2WritesSec,
		NoCFlits:   sim.L2AccessesSec,
		MCAccesses: sim.MemAccessesS,
	}
	runRep := p.Report(stats)
	fmt.Printf("\n=== runtime analysis (workload %q, IPC %.2f/core) ===\n",
		sim.Workload.Name, sim.CoreIPC)
	fmt.Printf("Runtime power = %.2f W (vs TDP %.2f W)\n",
		runRep.RuntimeDynamic+runRep.Leakage(), runRep.Peak())
}
