package mcpat_test

import (
	"fmt"

	"mcpat"
)

// ExampleNew shows the minimal TDP workflow: describe a chip, synthesize
// it, read the totals.
func ExampleNew() {
	cfg := mcpat.Config{
		Name: "example", NM: 45, ClockHz: 2e9, NumCores: 2,
		Core: mcpat.CoreConfig{
			Threads: 2,
			ICache:  mcpat.CacheParams{Bytes: 16 << 10},
			DCache:  mcpat.CacheParams{Bytes: 16 << 10},
			IntALUs: 1,
		},
		L2:  &mcpat.CacheConfig{Name: "L2", Bytes: 1 << 20, Banks: 2},
		NoC: mcpat.NoCSpec{Kind: mcpat.Bus, FlitBits: 64},
	}
	p, err := mcpat.New(cfg)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	rep := p.Report(nil)
	fmt.Printf("components: %d\n", len(rep.Children))
	fmt.Printf("positive totals: %v\n", rep.Peak() > 0 && rep.Area > 0)
	// Output:
	// components: 4
	// positive totals: true
}

// ExampleValidate reproduces one row of the paper's validation section.
func ExampleValidate() {
	target := mcpat.ValidationTargets()[0] // Niagara
	r, err := mcpat.Validate(target)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("target: %s\n", target.Ref.Name)
	fmt.Printf("TDP error within 20%%: %v\n", r.TDPErr > -20 && r.TDPErr < 20)
	fmt.Printf("area error within 25%%: %v\n", r.AreaErr > -25 && r.AreaErr < 25)
	// Output:
	// target: Niagara (UltraSPARC T1)
	// TDP error within 20%: true
	// area error within 25%: true
}

// ExampleSimulate runs the bundled performance substrate and inspects its
// statistics interface.
func ExampleSimulate() {
	sim, err := mcpat.Simulate(mcpat.Machine{
		Cores: 8, ThreadsPerCore: 4, ClockHz: 2e9,
		L2Latency: 16, MemLatency: 150, MemBandwidth: 50e9,
	}, mcpat.SPLASH2LikeWorkloads()[2]) // lu: cache-friendly
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("IPC at the issue cap: %v\n", sim.CoreIPC > 0.9)
	fmt.Printf("statistics present: %v\n", sim.L2AccessesSec > 0 && sim.MemAccessesS > 0)
	// Output:
	// IPC at the issue cap: true
	// statistics present: true
}

// ExamplePresetByName synthesizes a bundled template.
func ExamplePresetByName() {
	p, err := mcpat.PresetByName("arm-a9")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	proc, err := mcpat.New(p.Config)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("%s under 2W: %v\n", p.Name, proc.TDP() < 2)
	// Output:
	// arm-a9 under 2W: true
}

// ExampleVFScan sweeps voltage/frequency around the nominal point.
func ExampleVFScan() {
	preset, err := mcpat.PresetByName("atom-class")
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	pts, err := mcpat.VFScan(preset.Config, []float64{0.8, 1.0})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("points: %d\n", len(pts))
	fmt.Printf("lower voltage saves energy/cycle: %v\n",
		pts[0].EnergyPerCycle < pts[1].EnergyPerCycle)
	// Output:
	// points: 2
	// lower voltage saves energy/cycle: true
}
