package mcpat_test

// Bit-identity contract for the subsystem synthesis cache (the component
// layer above the array cache): chips assembled from shared memoized
// subsystems — cores, caches, fabrics, memory controllers, clock
// networks — must report byte-for-byte what a fully uncached build
// reports, both when the cache is filling and when every subsystem is a
// hit. The delta test pins the property that motivates the layer: a
// configuration change confined to the NoC must reuse the synthesized
// core and shared cache outright. The concurrent variant is the -race
// proof for single-flight subsystem sharing under the explore-engine
// access pattern.

import (
	"reflect"
	"sync"
	"testing"

	"mcpat"
)

func TestSubsysCachedReportsBitIdentical(t *testing.T) {
	ref := uncachedReports(t)
	mcpat.ResetSubsysSynthCache()

	for pass, label := range []string{"cold (cache-filling)", "warm (all hits)"} {
		for _, target := range mcpat.ValidationTargets() {
			res, err := mcpat.Validate(target)
			if err != nil {
				t.Fatalf("%s pass %d: %v", target.Ref.Name, pass, err)
			}
			if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
				t.Errorf("%s: %s subsystem-cached report differs from uncached reference",
					target.Ref.Name, label)
			}
		}
	}
	cs := mcpat.SubsysSynthCacheStats()
	if cs.Total().Hits == 0 {
		t.Error("warm pass produced no subsystem cache hits; cache not exercised")
	}
	for _, i := range []int{mcpat.SubsysKindCore, mcpat.SubsysKindCache} {
		if k := cs.Kinds[i]; k.Hits == 0 {
			t.Errorf("no %s reuse across the warm pass (stats %+v)", mcpat.SubsysKindName(i), k)
		}
	}
}

func TestSubsysCachedReportsBitIdenticalConcurrent(t *testing.T) {
	ref := uncachedReports(t)
	mcpat.ResetSubsysSynthCache()

	const workers = 6
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, target := range mcpat.ValidationTargets() {
				res, err := mcpat.Validate(target)
				if err != nil {
					errs <- target.Ref.Name + ": " + err.Error()
					return
				}
				if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
					errs <- target.Ref.Name + ": concurrent subsystem-cached report differs from uncached reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}

// noCVariant returns a 16-core chip description varying only in fabric.
func noCVariant(kind mcpat.InterconnectKind) mcpat.Config {
	cfg := mcpat.Config{
		Name: "delta", NM: 22, ClockHz: 2e9, NumCores: 16,
		Core: mcpat.CoreConfig{Threads: 2, IntALUs: 2, FPUs: 1, MulDivs: 1,
			ICache: mcpat.CacheParams{Bytes: 32 << 10}, DCache: mcpat.CacheParams{Bytes: 32 << 10}},
		L2:  &mcpat.CacheConfig{Name: "L2", Bytes: 4 << 20, Banks: 4},
		NoC: mcpat.NoCSpec{Kind: kind, FlitBits: 128},
	}
	if kind == mcpat.Mesh {
		cfg.NoC.MeshX, cfg.NoC.MeshY = 4, 4
	}
	return cfg
}

// TestSubsysDeltaReuse pins delta re-evaluation: across NoC-only
// variants, the core and the shared L2 synthesize exactly once; every
// later variant reuses them from the subsystem cache.
func TestSubsysDeltaReuse(t *testing.T) {
	mcpat.ResetSubsysSynthCache()
	kinds := []mcpat.InterconnectKind{mcpat.Mesh, mcpat.Ring, mcpat.Bus, mcpat.Crossbar}
	for _, k := range kinds {
		if _, err := mcpat.New(noCVariant(k)); err != nil {
			t.Fatalf("fabric %v: %v", k, err)
		}
	}
	cs := mcpat.SubsysSynthCacheStats()
	if got := cs.Kinds[mcpat.SubsysKindCore]; got.Misses != 1 || got.Hits != uint64(len(kinds)-1) {
		t.Errorf("core reuse across NoC-only sweep: %+v, want 1 miss and %d hits", got, len(kinds)-1)
	}
	if got := cs.Kinds[mcpat.SubsysKindCache]; got.Misses != 1 || got.Hits != uint64(len(kinds)-1) {
		t.Errorf("L2 reuse across NoC-only sweep: %+v, want 1 miss and %d hits", got, len(kinds)-1)
	}
	if got := cs.Kinds[mcpat.SubsysKindFabric]; got.Misses == 0 {
		t.Errorf("fabric should re-synthesize across fabric variants: %+v", got)
	}
}
