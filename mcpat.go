// Package mcpat is an integrated power, area, and timing (PAT) modeling
// framework for multicore and manycore processor architectures, a Go
// implementation of the McPAT framework (Li et al., MICRO 2009).
//
// McPAT models the complete chip: in-order and out-of-order cores
// (instruction fetch with branch prediction, renaming, scheduling,
// execution, load/store, and memory management units), shared caches with
// coherence directories, networks-on-chip (buses, crossbars, and 2D
// meshes, optionally clustered), memory controllers, I/O controllers, and
// the clock distribution network. Architectural components are mapped
// onto circuit-level structures (memory arrays, complex logic, wires,
// clock trees) and then onto ITRS-style device and interconnect
// technology parameters from 180 nm down to 22 nm, covering the HP, LSTP,
// and LOP transistor classes plus long-channel variants. An internal
// optimizer searches circuit configurations to satisfy the clock target.
//
// The framework separates peak (TDP) power from runtime power: runtime
// analysis consumes per-component activity statistics supplied by any
// external performance simulator through an XML interface (package-level
// LoadXML / WriteXML), exactly the decoupling the original tool defines.
//
// # Quick start
//
//	cfg := mcpat.Config{
//	    Name: "mychip", NM: 45, ClockHz: 2e9, NumCores: 4,
//	    Core: mcpat.CoreConfig{Threads: 2, IntALUs: 2, FPUs: 1},
//	    L2:   &mcpat.CacheConfig{Name: "L2", Bytes: 4 << 20, Banks: 4},
//	    NoC:  mcpat.NoCSpec{Kind: mcpat.Crossbar, FlitBits: 128},
//	}
//	p, err := mcpat.New(cfg)
//	if err != nil { ... }
//	report := p.Report(nil) // TDP-only report
//	fmt.Println(report.Format(2))
//
// The subpackages under internal/ implement the layered model; this
// package re-exports the stable public surface.
package mcpat

import (
	"context"
	"fmt"
	"io"
	"os"

	"mcpat/internal/array"
	"mcpat/internal/cache"
	"mcpat/internal/chip"
	"mcpat/internal/component"
	"mcpat/internal/config"
	"mcpat/internal/core"
	"mcpat/internal/distrib"
	"mcpat/internal/dram"
	"mcpat/internal/explore"
	"mcpat/internal/floorplan"
	"mcpat/internal/gem5"
	"mcpat/internal/guard"
	"mcpat/internal/m5compat"
	"mcpat/internal/mc"
	"mcpat/internal/perfsim"
	"mcpat/internal/persist"
	"mcpat/internal/power"
	"mcpat/internal/presets"
	"mcpat/internal/serve"
	"mcpat/internal/study"
	"mcpat/internal/tech"
	"mcpat/internal/thermal"
	"mcpat/internal/trace"
	"mcpat/internal/tracesim"
	"mcpat/internal/validation"
)

// Core configuration and model types.
type (
	// Config describes a full processor chip.
	Config = chip.Config
	// Stats carries runtime statistics from a performance simulator.
	Stats = chip.Stats
	// Processor is a synthesized chip; call Report for power/area trees.
	Processor = chip.Processor
	// NoCSpec configures the on-chip fabric.
	NoCSpec = chip.NoCSpec
	// CoreConfig describes one processor core.
	CoreConfig = core.Config
	// CoreActivity is the per-cycle activity vector of a core.
	CoreActivity = core.Activity
	// CacheParams configures a private L1 cache inside a core.
	CacheParams = core.CacheParams
	// CacheConfig describes a shared cache level (L2/L3).
	CacheConfig = cache.Config
	// MCConfig describes the memory controller.
	MCConfig = mc.Config
	// NIUConfig describes a network interface unit.
	NIUConfig = mc.NIUConfig
	// PCIeConfig describes a PCIe controller.
	PCIeConfig = mc.PCIeConfig
	// Report is a node of the hierarchical power/area report.
	Report = power.Item
	// DeviceType selects the ITRS transistor class.
	DeviceType = tech.DeviceType
	// InterconnectKind selects the chip-level fabric.
	InterconnectKind = chip.InterconnectKind
)

// Device classes.
const (
	// HP is the high-performance (fast, leaky) device class.
	HP = tech.HP
	// LSTP is the low-standby-power device class.
	LSTP = tech.LSTP
	// LOP is the low-operating-power device class.
	LOP = tech.LOP
)

// Interconnect kinds.
const (
	// NoInterconnect connects cores to the shared cache directly.
	NoInterconnect = chip.NoneIC
	// Bus is a shared multi-drop bus.
	Bus = chip.Bus
	// Crossbar is a flat crossbar (Niagara style).
	Crossbar = chip.Crossbar
	// Mesh is a 2D-mesh NoC (optionally clustered).
	Mesh = chip.Mesh
	// Ring is a ring of 3-port routers.
	Ring = chip.Ring
)

// New synthesizes a processor from a chip configuration.
//
// New never panics: faults inside the model layers are contained at this
// boundary and classified into the error taxonomy below (ErrConfig,
// ErrInfeasible, ErrModelDomain, ErrInternal). Inspect with errors.Is.
func New(cfg Config) (*Processor, error) { return chip.New(cfg) }

// Error taxonomy. Every error escaping the public API wraps exactly one
// of these sentinel kinds; test with errors.Is.
var (
	// ErrConfig marks a malformed or out-of-range configuration.
	ErrConfig = guard.ErrConfig
	// ErrInfeasible marks a well-formed request with no physical
	// solution (e.g. no array organization meets the clock target).
	ErrInfeasible = guard.ErrInfeasible
	// ErrModelDomain marks model output outside its validity domain
	// (NaN/Inf/negative power, inconsistent component trees).
	ErrModelDomain = guard.ErrModelDomain
	// ErrInternal marks a contained panic or framework bug.
	ErrInternal = guard.ErrInternal
)

// Output sanity guard.
type (
	// Diagnostic is one sanity violation found in a report tree.
	Diagnostic = guard.Diagnostic
	// Diagnostics is the full list from a sanity pass; Err() folds it
	// into a single ErrModelDomain error.
	Diagnostics = guard.Diagnostics
)

// CheckReport walks a power/area report and flags non-finite or negative
// values, component trees whose children exceed their parent, and runtime
// power beyond a sane multiple of TDP. An empty result means the report
// passed every check.
func CheckReport(rep *Report) Diagnostics { return guard.CheckReport(rep, nil) }

// LoadXML parses a McPAT-style XML document and returns the chip
// configuration plus any runtime statistics it carries.
func LoadXML(r io.Reader) (Config, *Stats, error) {
	root, err := config.Parse(r)
	if err != nil {
		return Config{}, nil, err
	}
	cfg, err := config.ToChipConfig(root)
	if err != nil {
		return Config{}, nil, err
	}
	return cfg, config.ToStats(root), nil
}

// LoadXMLFile is LoadXML reading from a file path.
func LoadXMLFile(path string) (Config, *Stats, error) {
	f, err := os.Open(path)
	if err != nil {
		return Config{}, nil, fmt.Errorf("mcpat: %w", err)
	}
	defer f.Close()
	return LoadXML(f)
}

// WriteXML serializes a chip configuration as a McPAT-style XML document.
func WriteXML(w io.Writer, cfg Config) error {
	return config.FromChipConfig(cfg).Write(w)
}

// WriteXMLWithStats serializes a configuration together with runtime
// statistics - the combined document a performance simulator hands back
// to the power models.
func WriteXMLWithStats(w io.Writer, cfg Config, stats *Stats) error {
	root := config.FromChipConfig(cfg)
	config.FromStats(root, stats)
	return root.Write(w)
}

// Floorplanning.
type (
	// FloorplanBlock is one top-level component to place on the die.
	FloorplanBlock = floorplan.Block
	// Floorplan is a completed die layout with distance queries.
	Floorplan = floorplan.Plan
)

// PlanFloor places count copies of the tile block in a near-square grid
// with pad-bound peripherals along the die edge, returning die geometry,
// block positions, mesh wire length, and route-length statistics.
func PlanFloor(tile FloorplanBlock, count int, periph []FloorplanBlock, aspect float64) (*Floorplan, error) {
	return floorplan.Grid(tile, count, periph, aspect)
}

// Preset couples a name and description with a ready-to-run chip
// configuration (ARM A9-class, Atom-class, Penryn-class, plus the four
// validation targets), matching the templates the original distribution
// ships.
type Preset = presets.Preset

// Presets returns every bundled chip template.
func Presets() []Preset { return presets.All() }

// PresetByName looks a bundled template up by its short name (e.g.
// "arm-a9", "niagara").
func PresetByName(name string) (Preset, error) { return presets.ByName(name) }

// ValidationTarget couples one of the paper's validation processors with
// its published reference data.
type ValidationTarget = validation.Target

// ValidationResult is a completed model-vs-published comparison.
type ValidationResult = validation.Result

// ValidationTargets returns the four processors the paper validates
// against: Niagara (90 nm), Niagara2 (65 nm), Alpha 21364 (180 nm), and
// Xeon Tulsa (65 nm).
func ValidationTargets() []ValidationTarget { return validation.All() }

// Validate synthesizes a validation target and compares it against its
// published reference data.
func Validate(t ValidationTarget) (*ValidationResult, error) { return validation.Compare(t) }

// Performance-simulation substrate (the McPAT-side interface accepts any
// simulator; this analytical one ships with the framework).
type (
	// Workload characterizes a parallel kernel for the bundled
	// performance model.
	Workload = perfsim.Workload
	// Machine is the performance-relevant view of a chip.
	Machine = perfsim.Machine
	// SimResult is a completed performance simulation.
	SimResult = perfsim.Result
)

// SPLASH2LikeWorkloads returns the three bundled workload descriptors
// (fft/ocean/lu-shaped).
func SPLASH2LikeWorkloads() []Workload { return perfsim.SPLASH2Like() }

// Simulate runs the bundled analytical performance model.
func Simulate(m Machine, w Workload) (*SimResult, error) { return perfsim.Run(m, w) }

// Case-study surface.
type (
	// StudyParams are the fixed parameters of the manycore case study.
	StudyParams = study.Params
	// ClusterResult is one design point of the clustering sweep.
	ClusterResult = study.ClusterResult
	// DeviceRow is one point of the device-type study.
	DeviceRow = study.DeviceRow
	// TechRow is one node of the cross-technology sweep.
	TechRow = study.TechRow
)

// DefaultStudyParams returns the paper-style 22 nm 64-core setup.
func DefaultStudyParams() StudyParams { return study.DefaultParams() }

// RunClusterStudy sweeps cluster sizes {1,2,4,8} for the given setup.
func RunClusterStudy(p StudyParams, ws []Workload) ([]ClusterResult, error) {
	return study.RunClusterSweep(p, ws)
}

// RunDeviceStudy synthesizes a fixed chip across nodes and device classes.
func RunDeviceStudy(nodes []float64) ([]DeviceRow, error) { return study.DeviceStudy(nodes) }

// RunTechStudy repeats the clustering sweep across technology nodes.
func RunTechStudy(nodes []float64, ws []Workload) ([]TechRow, error) {
	return study.RunTechSweep(nodes, ws)
}

// ManycoreConfig builds the chip configuration of one clustering design
// point of the case study.
func ManycoreConfig(p StudyParams, clusterSize int) (Config, error) {
	return study.ManycoreChip(p, clusterSize)
}

// Trace-driven cache simulation (the fidelity rung between workload
// parameters and a full-system simulator).
type (
	// TraceConfig describes a synthetic parallel program's memory behavior.
	TraceConfig = tracesim.TraceConfig
	// CacheHierarchy describes the simulated L1/L2 hierarchy.
	CacheHierarchy = tracesim.Hierarchy
	// TraceResult carries measured hit/miss/coherence statistics.
	TraceResult = tracesim.Result
)

// SimulateTrace runs a synthetic trace through set-associative caches
// with MSI coherence and measures miss rates and coherence traffic.
func SimulateTrace(h CacheHierarchy, tc TraceConfig) (*TraceResult, error) {
	return tracesim.Simulate(h, tc)
}

// M5 / gem5 statistics interface.
type M5Dump = m5compat.Dump

// ParseM5Stats reads the final dump of an M5/gem5 stats.txt stream.
func ParseM5Stats(r io.Reader) (M5Dump, error) { return m5compat.ParseLast(r) }

// M5ToStats converts a parsed M5/gem5 dump into this framework's runtime
// statistics vector.
func M5ToStats(d M5Dump, clockHz float64, numCores int) (*Stats, error) {
	return m5compat.ToChipStats(d, clockHz, numCores)
}

// ParseM5StatsAll reads every dump of an M5/gem5 stats.txt stream in
// order — the multi-interval entry point behind power traces.
func ParseM5StatsAll(r io.Reader) ([]M5Dump, error) { return m5compat.Parse(r) }

// M5ToStatsAt converts the i-th dump of a multi-dump stream into the
// runtime statistics vector.
func M5ToStatsAt(dumps []M5Dump, i int, clockHz float64, numCores int) (*Stats, error) {
	return m5compat.ToChipStatsAt(dumps, i, clockHz, numCores)
}

// M5DumpSeconds reports the simulated duration one dump covers
// (sim_seconds when present, cycles over the clock otherwise).
func M5DumpSeconds(d M5Dump, clockHz float64) (float64, error) {
	return m5compat.SimSeconds(d, clockHz)
}

// Native gem5 ingestion: template-free mapping of a gem5 config.json
// onto a chip configuration, with per-field provenance.
type (
	// Gem5Result is a mapped gem5 configuration: the chip description
	// plus the provenance trail and the preset that filled the gaps.
	Gem5Result = gem5.Result
	// Gem5Note records where one mapped field came from (config.json
	// path or preset default).
	Gem5Note = gem5.Note
)

// MapGem5Config maps a gem5 config.json document onto a chip
// configuration. Fields the dump records are taken verbatim; everything
// else defaults from a processor-class preset keyed to the CPU type,
// and every field carries a provenance note. Malformed documents are
// ErrConfig with a path into the JSON — never a panic.
func MapGem5Config(r io.Reader) (*Gem5Result, error) { return gem5.Map(r) }

// Time-series power traces: synthesize the chip once, score one cheap
// pure pass per statistics interval.
type (
	// TraceEngine scores intervals against one synthesized chip.
	TraceEngine = trace.Engine
	// TraceInterval is one statistics window (runtime vector + seconds).
	TraceInterval = trace.Interval
	// TraceSample is the scored power of one interval.
	TraceSample = trace.Sample
	// TraceSummary aggregates a finished trace (energy, average, peak).
	TraceSummary = trace.Summary
	// TraceHeader describes the chip a trace was scored against.
	TraceHeader = trace.Header
	// PowerTrace is a materialized trace: header, samples, summary. Its
	// WriteNDJSON/WriteCSV methods serialize it in the same formats the
	// service and mcpat-trace emit.
	PowerTrace = trace.Trace
	// TraceRecord is one NDJSON frame of a streamed trace.
	TraceRecord = trace.Record
	// TraceLoopOptions configures the closed power/thermal/DVFS feedback
	// loop of a trace run (see TraceEngine.EnableLoop).
	TraceLoopOptions = trace.LoopOptions
	// Governor picks the DVFS operating point of each trace interval.
	Governor = trace.Governor
	// GovernorInput is the state a governor decides from.
	GovernorInput = trace.GovernorInput
	// GovernorDecision is a governor's per-interval operating point.
	GovernorDecision = trace.GovernorDecision
	// ThermalHeadroomGovernor throttles proportionally to the thermal
	// headroom deficit.
	ThermalHeadroomGovernor = trace.ThermalHeadroom
	// ScheduleGovernor plays back a fixed per-interval DVFS schedule.
	ScheduleGovernor = trace.Schedule
)

// NewGovernor resolves a DVFS governor by policy name ("none",
// "headroom", or "schedule") — the mapping behind the mcpat-trace
// -governor flag and the service's thermal trace options.
func NewGovernor(name string, targetK float64, freqSchedule []float64) (Governor, error) {
	return trace.NewGovernor(name, targetK, freqSchedule)
}

// NewTraceEngine synthesizes cfg once and returns an engine whose Run
// method scores statistics intervals into a PowerTrace. Per-interval
// reports are bit-identical to Report over the same statistics.
func NewTraceEngine(cfg Config) (*TraceEngine, error) { return trace.NewEngine(cfg) }

// TraceIntervalsFromDumps converts parsed gem5 dumps into trace
// intervals for a chip with the given clock and core count.
func TraceIntervalsFromDumps(dumps []M5Dump, clockHz float64, numCores int) ([]TraceInterval, error) {
	return trace.IntervalsFromDumps(dumps, clockHz, numCores)
}

// TraceFromGem5 wires the native pipeline end to end: map config.json,
// synthesize the chip once, and convert every stats.txt dump into an
// interval ready for TraceEngine.Run.
func TraceFromGem5(configJSON, statsTxt io.Reader) (*TraceEngine, []TraceInterval, *Gem5Result, error) {
	return trace.FromGem5(configJSON, statsTxt)
}

// Design-space exploration.
type (
	// DSESpace enumerates the design axes to sweep.
	DSESpace = explore.Space
	// DSEConstraints bound the feasible region (area/TDP budgets).
	DSEConstraints = explore.Constraints
	// DSEParams fixes the non-swept parameters.
	DSEParams = explore.Params
	// DSECandidate is one evaluated design point.
	DSECandidate = explore.Candidate
	// DSEResult is a completed exploration.
	DSEResult = explore.Result
	// DSEObjective ranks feasible candidates.
	DSEObjective = explore.Objective
	// DSEOptions tunes the parallel sweep engine (worker count,
	// per-candidate deadline, fail-fast).
	DSEOptions = explore.Options
	// DSEFailure records a candidate whose evaluation faulted (panic,
	// timeout) without aborting the sweep.
	DSEFailure = explore.Failure
	// DSESearchKind selects the search strategy (exhaustive sweep or
	// budgeted adaptive Pareto search) via DSEOptions.Search.
	DSESearchKind = explore.SearchKind
)

// DSE objectives.
const (
	// MaxThroughput maximizes aggregate instructions/s.
	MaxThroughput = explore.MaxThroughput
	// MaxPerfPerWatt maximizes throughput per runtime watt.
	MaxPerfPerWatt = explore.MaxPerfPerWatt
	// MinED2AP minimizes energy x delay^2 x area.
	MinED2AP = explore.MinED2AP
)

// DSE search strategies.
const (
	// SearchExhaustive evaluates every point of the space (the default).
	SearchExhaustive = explore.SearchExhaustive
	// SearchPareto runs the budgeted adaptive multi-objective search:
	// same single-objective winners as the exhaustive sweep on the
	// validation spaces with roughly a tenth of the evaluations, plus a
	// Pareto front over {power, area, delay, ED², EDA}.
	SearchPareto = explore.SearchPareto
)

// ParseDSESearchKind parses a -search flag value ("", "exhaustive",
// "pareto") into a DSESearchKind.
func ParseDSESearchKind(s string) (DSESearchKind, error) {
	return explore.ParseSearchKind(s)
}

// ExploreDesignSpace exhaustively evaluates the space under the budget
// and returns candidates ranked by the objective.
func ExploreDesignSpace(p DSEParams, space DSESpace, cons DSEConstraints, obj DSEObjective) (*DSEResult, error) {
	return explore.Search(p, space, cons, obj)
}

// ExploreDesignSpaceContext is ExploreDesignSpace with cancellation and
// fault tolerance: candidates are evaluated by a bounded worker pool,
// a candidate that panics or exceeds the per-candidate deadline becomes a
// DSEFailure in the result instead of aborting the sweep, and cancelling
// ctx stops the sweep promptly, returning the partial result alongside
// ctx's error. Result ordering is deterministic regardless of worker
// count. opts may be nil for defaults.
func ExploreDesignSpaceContext(ctx context.Context, p DSEParams, space DSESpace, cons DSEConstraints, obj DSEObjective, opts *DSEOptions) (*DSEResult, error) {
	return explore.SearchContext(ctx, p, space, cons, obj, opts)
}

// Distributed DSE (the coordinator/worker subsystem). A coordinator
// shards an exhaustive sweep across mcpatd -worker instances over HTTP
// with work-stealing and bounded retry, and merges the per-shard
// results into a result bit-identical to the single-process engine.
type (
	// DistribOptions tunes the distributed coordinator (remote workers,
	// shard sizing, retry/backoff, metrics sink).
	DistribOptions = distrib.Options
	// DistribMetrics accumulates coordinator counters across sweeps;
	// pass one instance via DistribOptions.Metrics and snapshot it.
	DistribMetrics = distrib.Metrics
	// DistribStats is a point-in-time snapshot of coordinator activity
	// (shards dispatched/stolen/retried, per-worker throughput).
	DistribStats = distrib.Stats
)

// ExploreDesignSpaceDistributed runs an exhaustive sweep sharded across
// the workers in opts.Remotes (plus the built-in local worker), with
// the same cancellation semantics as ExploreDesignSpaceContext. The
// result is bit-identical to the single-process sweep: candidate
// ranking, winners, and Pareto front all match. opts may be nil, which
// degrades to the local worker alone.
func ExploreDesignSpaceDistributed(ctx context.Context, p DSEParams, space DSESpace, cons DSEConstraints, obj DSEObjective, opts *DistribOptions) (*DSEResult, error) {
	return distrib.Run(ctx, p, space, cons, obj, opts)
}

// HTTP evaluation service (the mcpatd subsystem). The wire types are
// shared between the service and the CLIs so both emit identical JSON.
type (
	// ServerConfig tunes the evaluation service (admission limits,
	// deadlines, job pool).
	ServerConfig = serve.Config
	// Server is the mcpatd HTTP service; mount Handler() on an
	// http.Server and call Shutdown to drain.
	Server = serve.Server
	// EvaluateRequest is the POST /v1/evaluate JSON body.
	EvaluateRequest = serve.EvaluateRequest
	// EvaluateResponse is the POST /v1/evaluate success body.
	EvaluateResponse = serve.EvaluateResponse
	// DSERequest is the POST /v1/dse JSON body describing one sweep.
	DSERequest = serve.DSERequest
	// DSEReport is the machine-readable sweep result, shared by the
	// service's job results and mcpat-dse -json.
	DSEReport = serve.DSEReport
	// DSEReportCandidate is the wire form of one evaluated point.
	DSEReportCandidate = serve.DSECandidate
	// JobStatus is the wire form of an async DSE job.
	JobStatus = serve.JobStatus
	// APIError is the structured error detail of non-2xx responses.
	APIError = serve.APIError
	// TraceRequest is the POST /v1/trace JSON body (gem5 config.json or
	// preset/config plus a multi-dump stats.txt).
	TraceRequest = serve.TraceRequest
)

// NewServer builds the evaluation service; see cmd/mcpatd for the
// ready-made binary.
func NewServer(cfg ServerConfig) *Server { return serve.New(cfg) }

// NewDSEReport converts an exploration result into the shared wire
// form, so library users serialize sweeps identically to the service.
func NewDSEReport(res *DSEResult, obj DSEObjective) *DSEReport {
	return serve.NewDSEReport(res, obj)
}

// Thermal co-analysis: solve the power-temperature fixed point.
type (
	// PackageSpec describes the cooling solution (ambient, Rtheta,
	// iteration knobs, transient time constant).
	PackageSpec = thermal.PackageSpec
	// ThermalResult is a converged power/temperature operating point.
	ThermalResult = thermal.Result
	// ThermalBlock is one lumped node of the transient thermal network.
	ThermalBlock = thermal.Block
	// ThermalModel is the per-block lumped RC network the closed-loop
	// trace engine steps once per interval.
	ThermalModel = thermal.Model
)

// SolveThermal finds the self-consistent junction temperature of the
// chip's TDP operating point. The chip is synthesized exactly once;
// every iteration is a Score-time leakage retune over the same
// synthesized parts.
func SolveThermal(cfg Config, pkg PackageSpec) (*ThermalResult, error) {
	return thermal.Solve(cfg, pkg)
}

// SolveThermalOn runs the power-temperature fixed point over an
// already-synthesized processor; non-nil stats balances runtime power
// instead of TDP (the steady state a closed-loop trace converges to on
// a constant workload).
func SolveThermalOn(p *Processor, stats *Stats, pkg PackageSpec) (*ThermalResult, error) {
	return thermal.SolveProcessor(p, stats, pkg)
}

// Off-chip DRAM device power (IDD methodology).
type (
	// DRAMDevice is a DRAM datasheet extract.
	DRAMDevice = dram.DeviceSpec
	// DRAMChannel describes one populated memory channel.
	DRAMChannel = dram.ChannelSpec
	// DRAMTraffic is the served workload of a channel.
	DRAMTraffic = dram.Traffic
	// DRAMPower is the channel power breakdown.
	DRAMPower = dram.Result
)

// DDR2x800 returns a representative DDR2-800 device spec.
func DDR2x800() DRAMDevice { return dram.DDR2_800() }

// DDR3x1333 returns a representative DDR3-1333 device spec.
func DDR3x1333() DRAMDevice { return dram.DDR3_1333() }

// DRAMChannelPower evaluates the IDD power model for one channel.
func DRAMChannelPower(ch DRAMChannel, tr DRAMTraffic) (*DRAMPower, error) {
	return dram.ChannelPower(ch, tr)
}

// Cache is a synthesized shared cache level: the data/tag arrays, MSHRs,
// write-back buffer, and optional directory, with per-access energies,
// leakage, area, and access time chosen by the internal optimizer.
type Cache = cache.Cache

// TimingEntry reports one component's latency against the cycle budget.
type TimingEntry = chip.TimingEntry

// VFPoint is one operating point of a voltage-frequency scan.
type VFPoint = chip.VFPoint

// VFScan sweeps supply voltage around the nominal point, retuning the
// clock with the alpha-power law, and reports the resulting TDP /
// dynamic / leakage / energy-per-cycle curve - McPAT's DVFS capability.
// scales are relative Vdd multipliers (nil selects 0.7..1.1).
func VFScan(cfg Config, scales []float64) ([]VFPoint, error) {
	return chip.VFScan(cfg, scales)
}

// ArrayCacheStats is a snapshot of the array-synthesis cache counters:
// hits, misses, single-flight shared solves, bypassed (uncached) solves,
// and resident entries. See ArraySynthCacheStats.
type ArrayCacheStats = array.CacheStats

// ArraySynthCacheStats returns the current counters of the process-wide
// circuit-synthesis result cache. Every storage structure on a chip
// (caches, register files, queues, TLBs, buffers) is solved by an
// internal optimizer that enumerates subarray organizations; the cache
// memoizes those solves by a canonical configuration key plus the
// technology node's value fingerprint, so repeated evaluation - a DSE
// sweep, a DVFS scan, a thermal fixed-point iteration - reuses earlier
// work. Cached results are bit-identical to uncached ones; concurrent
// solves of the same structure share a single computation.
func ArraySynthCacheStats() ArrayCacheStats { return array.Stats() }

// ResetArraySynthCache drops every cached synthesis result and zeroes
// the counters, forcing subsequent evaluations to start cold (useful for
// benchmarking and for bounding memory across unrelated long runs).
func ResetArraySynthCache() { array.ResetCache() }

// SetArraySynthCache enables or disables synthesis-result caching (it is
// enabled by default) and returns the previous setting. Disabling does
// not drop resident entries; pair with ResetArraySynthCache for a fully
// cold, cache-free run.
func SetArraySynthCache(enabled bool) bool { return array.SetCacheEnabled(enabled) }

// ArrayOptimizerStats is a snapshot of the array optimizer's enumeration
// counters: organizations fully evaluated vs skipped by the
// branch-and-bound lower bound. See ArrayOptStats.
type ArrayOptimizerStats = array.OptimizerStats

// ArrayOptStats returns the process-wide array-optimizer counters. They
// move only on real (uncached) syntheses, so their delta over a window
// measures cold-path enumeration work and how much of it the pruning
// bound eliminated. Pruning never changes a winner - skipped
// organizations provably could not beat the incumbent.
func ArrayOptStats() ArrayOptimizerStats { return array.OptStats() }

// SetSynthWorkers sets the process-wide default for concurrent subsystem
// synthesis during chip assembly (cores, shared caches, memory and I/O
// controllers build in parallel on a bounded worker pool) and returns
// the previous raw setting. 0 selects runtime.GOMAXPROCS(0) at build
// time; 1 forces serial assembly. Parallel and serial assembly produce
// bit-identical reports; results always fold in the pinned report
// order.
func SetSynthWorkers(n int) int { return chip.SetSynthWorkers(n) }

// SynthWorkers reports the resolved process-wide assembly parallelism.
func SynthWorkers() int { return chip.SynthWorkers() }

// SynthInflight reports how many subsystem builders are executing right
// now across all concurrent evaluations (an observability gauge).
func SynthInflight() int64 { return chip.SynthInflight() }

// SubsysCacheStats is a snapshot of the subsystem synthesis-cache
// counters, broken down by component kind (core, cache, fabric, mc,
// clock). See SubsysSynthCacheStats.
type SubsysCacheStats = component.CacheStats

// SubsysKindStats is the per-kind counter record inside SubsysCacheStats.
type SubsysKindStats = component.KindStats

// SubsysSynthCacheStats returns the current counters of the process-wide
// subsystem synthesis cache — the layer above the array cache. Whole
// synthesized subsystems (a core with all of its arrays, a banked shared
// cache, a router, a memory controller, the clock network) are memoized
// by canonical configuration keys, so a DSE candidate that shares a
// subsystem configuration with an earlier candidate reuses the
// synthesized model outright instead of re-running its synthesis. This
// is what makes sweeps incremental: a sweep that varies only NoC
// parameters re-synthesizes fabrics and clocks but never cores or
// caches (delta re-evaluation). Scoring a report from shared components
// is pure, so reuse is bit-identical and safe under concurrency.
func SubsysSynthCacheStats() SubsysCacheStats { return component.Stats() }

// ResetSubsysSynthCache drops every cached subsystem and zeroes the
// counters, forcing subsequent chip builds to re-synthesize (the array
// cache underneath is independent; reset it separately).
func ResetSubsysSynthCache() { component.ResetCache() }

// SetSubsysSynthCache enables or disables subsystem-result caching (it
// is enabled by default) and returns the previous setting. Disabling
// does not drop resident entries; pair with ResetSubsysSynthCache for a
// fully cold run.
func SetSubsysSynthCache(enabled bool) bool { return component.SetCacheEnabled(enabled) }

// DiskCacheStats is a snapshot of the persistent (disk) synthesis-cache
// counters: hits, misses, corrupt entries quarantined, evictions, write
// errors, and the resident set size. Enabled is false when no cache
// directory is configured. See EnablePersistentCache.
type DiskCacheStats = persist.Stats

// EnablePersistentCache opens (creating if needed) a disk-backed cache
// tier under dir and installs it as the process default: every later
// array and subsystem synthesis first consults it on a memory miss and
// publishes new results back, so separate processes — CLI runs, daemon
// restarts — warm-start from each other's work. maxBytes bounds the
// resident set (0 selects the 1 GiB default, negative disables
// eviction). Entries are verified on load (magic, lengths, checksum,
// and full key comparison); anything corrupt or truncated is
// quarantined and resynthesized, never served, so disk-hydrated reports
// are bit-identical to cold synthesis. Several processes may share one
// directory concurrently.
//
// The returned release function uninstalls the tier and closes the
// store. An unusable directory returns an error and the process keeps
// running purely in-memory.
func EnablePersistentCache(dir string, maxBytes int64) (func(), error) {
	store, err := persist.Open(persist.Options{Dir: dir, MaxBytes: maxBytes})
	if err != nil {
		return nil, err
	}
	prev := persist.SetDefault(store)
	return func() {
		persist.SetDefault(prev)
		store.Close()
	}, nil
}

// PersistentCacheStats returns the current counters of the installed
// disk cache tier, or a zero snapshot (Enabled false) when none is
// installed.
func PersistentCacheStats() DiskCacheStats { return persist.DefaultStats() }

// Indices into SubsysCacheStats.Kinds, one per memoized subsystem
// family.
const (
	SubsysKindCore   = int(component.KindCore)
	SubsysKindCache  = int(component.KindCache)
	SubsysKindFabric = int(component.KindFabric)
	SubsysKindMC     = int(component.KindMC)
	SubsysKindClock  = int(component.KindClock)
)

// SubsysKindName returns the display name of a SubsysCacheStats.Kinds
// index ("core", "cache", "fabric", "mc", "clock").
func SubsysKindName(i int) string { return component.Kind(i).String() }

// NewCache synthesizes a standalone shared cache at the given node,
// device class, and target clock - direct access to the memory-array
// optimizer for cache design-space exploration.
func NewCache(nm, clockHz float64, dev DeviceType, cfg CacheConfig) (*Cache, error) {
	node, err := tech.ByFeature(nm)
	if err != nil {
		return nil, err
	}
	cfg.Tech = node
	cfg.Dev = dev
	if cfg.TargetHz == 0 {
		cfg.TargetHz = clockHz
	}
	return cache.New(cfg)
}
