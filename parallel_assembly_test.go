package mcpat_test

// Bit-identity contract for parallel chip assembly: a chip built with
// the stage-0 subsystem builders fanned out across a worker pool must
// produce a report tree byte-for-byte equal to a fully serial build.
// Both synthesis caches are disabled throughout so every build takes
// the true cold path through the pool, and the stress variant runs
// several whole-chip builds concurrently under -race to prove the
// pool, the in-flight gauge, and the builders share no hidden state.

import (
	"reflect"
	"strings"
	"sync"
	"testing"

	"mcpat"
)

// serialColdReports builds every validation target fully serially with
// both synthesis caches disabled — the ground-truth reference.
func serialColdReports(t *testing.T) map[string]*mcpat.Report {
	t.Helper()
	prev := mcpat.SetSynthWorkers(1)
	defer mcpat.SetSynthWorkers(prev)
	return uncachedReports(t)
}

func TestParallelAssemblyBitIdentical(t *testing.T) {
	ref := serialColdReports(t)

	prevArr := mcpat.SetArraySynthCache(false)
	prevSub := mcpat.SetSubsysSynthCache(false)
	prevW := mcpat.SetSynthWorkers(8)
	defer func() {
		mcpat.SetArraySynthCache(prevArr)
		mcpat.SetSubsysSynthCache(prevSub)
		mcpat.SetSynthWorkers(prevW)
	}()

	for _, target := range mcpat.ValidationTargets() {
		res, err := mcpat.Validate(target)
		if err != nil {
			t.Fatalf("%s parallel: %v", target.Ref.Name, err)
		}
		if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
			t.Errorf("%s: parallel cold report differs from serial reference",
				target.Ref.Name)
		}
	}
	if n := mcpat.SynthInflight(); n != 0 {
		t.Errorf("SynthInflight = %d after all builds returned; gauge leaked", n)
	}
}

// TestParallelAssemblyConcurrentStress overlaps whole-chip parallel
// builds from several goroutines — each build fans out its own stage-0
// pool — with caches bypassed so nothing is shared but the model code
// itself. Run under -race in CI.
func TestParallelAssemblyConcurrentStress(t *testing.T) {
	ref := serialColdReports(t)

	prevArr := mcpat.SetArraySynthCache(false)
	prevSub := mcpat.SetSubsysSynthCache(false)
	prevW := mcpat.SetSynthWorkers(8)
	defer func() {
		mcpat.SetArraySynthCache(prevArr)
		mcpat.SetSubsysSynthCache(prevSub)
		mcpat.SetSynthWorkers(prevW)
	}()

	const builders = 4
	var wg sync.WaitGroup
	errs := make(chan string, builders)
	for w := 0; w < builders; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, target := range mcpat.ValidationTargets() {
				res, err := mcpat.Validate(target)
				if err != nil {
					errs <- target.Ref.Name + ": " + err.Error()
					return
				}
				if !reflect.DeepEqual(res.Report, ref[target.Ref.Name]) {
					errs <- target.Ref.Name + ": concurrent parallel report differs from serial reference"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
	if n := mcpat.SynthInflight(); n != 0 {
		t.Errorf("SynthInflight = %d after stress; gauge leaked", n)
	}
}

// TestParallelAssemblyErrorParity pins that a subsystem failure
// surfaces as the same error whether the failing builder ran on the
// pool or inline: parallel assembly selects the first error in registry
// order, which is exactly the error a serial walk stops at.
func TestParallelAssemblyErrorParity(t *testing.T) {
	cfg := mcpat.ValidationTargets()[0].Chip
	l2 := *cfg.L2
	l2.Bytes = -1 // capacity is required; this fails inside the L2 builder
	cfg.L2 = &l2

	prevW := mcpat.SetSynthWorkers(1)
	_, serialErr := mcpat.New(cfg)
	mcpat.SetSynthWorkers(8)
	_, parallelErr := mcpat.New(cfg)
	mcpat.SetSynthWorkers(prevW)

	if serialErr == nil || parallelErr == nil {
		t.Fatalf("poisoned L2 config did not fail: serial=%v parallel=%v", serialErr, parallelErr)
	}
	if serialErr.Error() != parallelErr.Error() {
		t.Errorf("error mismatch:\n  serial:   %v\n  parallel: %v", serialErr, parallelErr)
	}
	if !strings.Contains(parallelErr.Error(), "l2") && !strings.Contains(parallelErr.Error(), "L2") {
		t.Errorf("parallel error lost subsystem attribution: %v", parallelErr)
	}
}
