package mcpat_test

// Equivalence contract of the Score-time temperature refactor, at the
// whole-chip level over every validation target:
//
//  1. Temperature is *exactly* a Score-time retune. A chip configured at
//     any operating temperature, re-scored at the reference temperature,
//     must produce a report byte-for-byte equal to a chip that never left
//     the reference — proving no temperature dependence leaked into
//     synthesis. (The one-time migration check against the pre-refactor
//     engine was done with golden hex-float dumps: default-temperature
//     reports were bit-identical; this test is the permanent in-tree
//     guard of that property.)
//  2. Chips differing only in temperature share every synthesized part:
//     building the same target at several temperatures after a warm-up
//     build causes zero additional synthesis misses.
//  3. The closed-loop trace engine's steady state on a constant workload
//     equals the legacy thermal.Solve fixed point to 1e-9 relative
//     tolerance, with cache counters proving the whole loop ran against
//     exactly one synthesis.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"mcpat"
)

// scoreAtReference builds cfg and rescores it at the node's reference
// temperature, returning the resulting TDP report.
func scoreAtReference(t *testing.T, cfg mcpat.Config) *mcpat.Report {
	t.Helper()
	p, err := mcpat.New(cfg)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	p.SetScoreTemperature(0) // restore the reference temperature
	rep, err := p.ReportE(nil)
	if err != nil {
		t.Fatalf("%s: %v", cfg.Name, err)
	}
	return rep
}

// TestTemperatureIsPureScoreRetune: for every validation target, reports
// scored at the reference temperature are bit-identical regardless of
// the operating temperature the chip was configured with.
func TestTemperatureIsPureScoreRetune(t *testing.T) {
	for _, target := range mcpat.ValidationTargets() {
		cfg := target.Chip

		base := cfg
		base.Temperature = 0 // node reference
		ref := scoreAtReference(t, base)

		for _, temp := range []float64{320, 340, 360, 380} {
			hot := cfg
			hot.Temperature = temp
			got := scoreAtReference(t, hot)
			if !reflect.DeepEqual(got, ref) {
				t.Errorf("%s: chip configured at %.0f K rescored at reference differs from reference-built chip",
					cfg.Name, temp)
			}
		}
	}
}

// TestTemperatureVariantsShareSynthesis: after one warm-up build per
// target, rebuilding at different operating temperatures must be served
// entirely from the synthesis caches — the fingerprint no longer embeds
// temperature.
func TestTemperatureVariantsShareSynthesis(t *testing.T) {
	for _, target := range mcpat.ValidationTargets() {
		if _, err := mcpat.New(target.Chip); err != nil { // warm-up
			t.Fatalf("%s: %v", target.Ref.Name, err)
		}
	}
	before := mcpat.SubsysSynthCacheStats()
	for _, target := range mcpat.ValidationTargets() {
		for _, temp := range []float64{310, 355, 395} {
			cfg := target.Chip
			cfg.Temperature = temp
			if _, err := mcpat.New(cfg); err != nil {
				t.Fatalf("%s at %.0f K: %v", target.Ref.Name, temp, err)
			}
		}
	}
	d := mcpat.SubsysSynthCacheStats().Delta(before).Total()
	if d.Misses != 0 || d.Bypassed != 0 {
		t.Errorf("temperature-only variants caused %d synthesis misses and %d bypasses; parts must be shared",
			d.Misses, d.Bypassed)
	}
}

// TestTemperatureMonotonicLeakage sanity-pins the retune's direction and
// shape: leakage grows with score temperature, gate leakage and area do
// not move, and the retune is reversible.
func TestTemperatureMonotonicLeakage(t *testing.T) {
	cfg := mcpat.ValidationTargets()[0].Chip
	p, err := mcpat.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	p.SetScoreTemperature(0)
	ref, _ := p.ReportE(nil)
	prev := 0.0
	for _, temp := range []float64{320, 340, 360, 380, 400} {
		p.SetScoreTemperature(temp)
		rep, err := p.ReportE(nil)
		if err != nil {
			t.Fatal(err)
		}
		if rep.SubLeak <= prev {
			t.Errorf("subthreshold leakage must grow with temperature: %.3f W at %.0f K after %.3f W", rep.SubLeak, temp, prev)
		}
		if rep.GateLeak != ref.GateLeak {
			t.Errorf("gate leakage must not move with temperature: %.6f vs %.6f W", rep.GateLeak, ref.GateLeak)
		}
		if rep.Area != ref.Area || rep.PeakDynamic != ref.PeakDynamic {
			t.Error("area and peak dynamic must not move with temperature")
		}
		prev = rep.SubLeak
	}
	p.SetScoreTemperature(0)
	back, _ := p.ReportE(nil)
	if !reflect.DeepEqual(back, ref) {
		t.Error("restoring the reference temperature must restore the reference report bits")
	}
}

// TestClosedLoopSteadyStateMatchesSolve: on a constant workload the
// closed-loop trace engine must settle on the same power-temperature
// fixed point the legacy thermal solver finds, within 1e-9 relative
// tolerance — and the entire exercise (engine build, solver, trace loop)
// must touch the synthesis layer exactly once, at engine construction.
func TestClosedLoopSteadyStateMatchesSolve(t *testing.T) {
	cfg := mcpat.ValidationTargets()[0].Chip
	pkg := mcpat.PackageSpec{
		RthetaJA:        0.3,
		AmbientK:        318,
		ConvergenceTolK: 1e-12,
		MaxIterations:   500,
	}

	eng, err := mcpat.NewTraceEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	afterBuild := mcpat.SubsysSynthCacheStats()

	// Legacy fixed point over the engine's own processor, balancing
	// runtime power (zero activity: the leakage-dominated floor).
	stats := &mcpat.Stats{}
	solved, err := mcpat.SolveThermalOn(eng.Processor(), stats, pkg)
	if err != nil {
		t.Fatal(err)
	}
	if !solved.Converged {
		t.Fatalf("solver did not converge: %+v", solved)
	}

	// Closed loop: whole-die model (the solver's geometry), quasi-static
	// steps, no governor — a constant trace must converge to the same
	// temperature.
	if err := eng.EnableLoop(mcpat.TraceLoopOptions{Package: pkg}); err != nil {
		t.Fatal(err)
	}
	const n = 200
	ivs := make([]mcpat.TraceInterval, n)
	for i := range ivs {
		ivs[i] = mcpat.TraceInterval{Stats: stats, Duration: 1e-3}
	}
	tr, err := eng.Run(context.Background(), ivs, nil)
	if err != nil {
		t.Fatal(err)
	}
	last := tr.Samples[n-1].TemperatureK
	settled := tr.Samples[n-2].TemperatureK
	if math.Abs(last-settled) > 1e-10 {
		t.Fatalf("trace has not settled: %.12f vs %.12f K", settled, last)
	}
	if rel := math.Abs(last-solved.TjK) / solved.TjK; rel > 1e-9 {
		t.Errorf("closed-loop steady state %.9f K vs solver fixed point %.9f K (rel %.2e)",
			last, solved.TjK, rel)
	}

	// Everything after the engine build — solver iterations, loop setup
	// (one heap report), and 200 scored intervals — must be pure Score
	// work: zero synthesis-layer activity of any kind.
	d := mcpat.SubsysSynthCacheStats().Delta(afterBuild).Total()
	if d.Misses != 0 || d.Hits != 0 || d.Bypassed != 0 {
		t.Errorf("thermal loop touched the synthesis layer: %+v", d)
	}
}
