module mcpat

go 1.24
