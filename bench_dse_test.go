package mcpat_test

// DSE sweep benchmarks: measure the end-to-end design-space-exploration
// hot path that the synthesis cache accelerates. Each iteration runs a
// full multi-candidate sweep (core count x L2 capacity x clustering), so
// the reported candidates/sec is the planning-loop throughput a user of
// cmd/mcpat-dse sees. The Cold variant resets and disables the cache to
// give the uncached baseline; comparing the two is the cache's speedup
// on sweep workloads (BENCH_dse.json records the reference numbers).

import (
	"context"
	"testing"

	"mcpat"
)

func dseSweep(b *testing.B) *mcpat.DSEResult {
	return dseSweepOpts(b, nil)
}

func dseSweepOpts(b *testing.B, opts *mcpat.DSEOptions) *mcpat.DSEResult {
	b.Helper()
	res, err := mcpat.ExploreDesignSpaceContext(
		context.Background(),
		mcpat.DSEParams{NM: 22, ClockHz: 2.5e9, Threads: 4},
		mcpat.DSESpace{
			Cores:        []int{8, 16, 32},
			L2PerCoreKB:  []int{128, 256},
			ClusterSizes: []int{1, 2},
		},
		mcpat.DSEConstraints{MaxAreaMM2: 400, MaxTDP: 250},
		mcpat.MaxThroughput,
		opts,
	)
	if err != nil {
		b.Fatal(err)
	}
	if res.Best == nil {
		b.Fatal("sweep found no feasible design")
	}
	return res
}

// BenchmarkDSESweep measures sweep throughput with the synthesis cache
// enabled (the default). After the first iteration warms the cache,
// every candidate's arrays resolve to cache hits.
func BenchmarkDSESweep(b *testing.B) {
	mcpat.ResetArraySynthCache()
	var evaluated int
	for i := 0; i < b.N; i++ {
		res := dseSweep(b)
		evaluated = res.Evaluated
	}
	b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
	cs := mcpat.ArraySynthCacheStats()
	b.ReportMetric(100*cs.HitRate(), "hit%")
}

// coldSweepBench runs the sweep with BOTH synthesis cache layers
// disabled — the true uncached baseline where every candidate pays full
// array-optimizer enumeration and subsystem assembly cost. opts selects
// the assembly parallelism under test.
func coldSweepBench(b *testing.B, opts *mcpat.DSEOptions) {
	b.Helper()
	prevArr := mcpat.SetArraySynthCache(false)
	prevSub := mcpat.SetSubsysSynthCache(false)
	defer func() {
		mcpat.SetArraySynthCache(prevArr)
		mcpat.SetSubsysSynthCache(prevSub)
	}()
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	b.ReportAllocs()
	b.ResetTimer()
	var evaluated int
	for i := 0; i < b.N; i++ {
		res := dseSweepOpts(b, opts)
		evaluated = res.Evaluated
	}
	b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
}

// BenchmarkDSESweepCold is the uncached baseline: both synthesis caches
// are disabled for the duration, so every candidate pays full synthesis
// cost (at the process-default assembly parallelism).
func BenchmarkDSESweepCold(b *testing.B) {
	coldSweepBench(b, nil)
}

// BenchmarkDSESweepColdSerial pins the fully serial cold sweep: one
// subsystem builds at a time inside each candidate. The gap to
// BenchmarkDSESweepColdParallel is the concurrent-assembly speedup on
// the host (identical on a 1-core machine by design).
func BenchmarkDSESweepColdSerial(b *testing.B) {
	coldSweepBench(b, &mcpat.DSEOptions{SynthWorkers: 1})
}

// BenchmarkDSESweepColdParallel runs the cold sweep with stage-0
// subsystem builders fanned out across GOMAXPROCS workers per chip.
func BenchmarkDSESweepColdParallel(b *testing.B) {
	coldSweepBench(b, &mcpat.DSEOptions{SynthWorkers: 0})
}

// BenchmarkDSESweepDiskWarm measures the restart path the persistent
// cache tier targets: a first sweep populates the disk tier, then each
// iteration simulates a process restart by dropping both in-memory
// cache layers, so every candidate hydrates from disk instead of
// re-running synthesis. Compare with BenchmarkDSESweepCold (the true
// cold baseline, what a restart costs without -cache-dir) for the
// warm-start win, and with BenchmarkDSESweep for the residual decode
// overhead versus a purely in-memory hit.
func BenchmarkDSESweepDiskWarm(b *testing.B) {
	release, err := mcpat.EnablePersistentCache(b.TempDir(), 0)
	if err != nil {
		b.Fatal(err)
	}
	defer release()
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	dseSweep(b) // populate the disk tier once
	b.ReportAllocs()
	b.ResetTimer()
	var evaluated int
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		mcpat.ResetArraySynthCache()
		mcpat.ResetSubsysSynthCache()
		b.StartTimer()
		res := dseSweep(b)
		evaluated = res.Evaluated
	}
	b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
	ds := mcpat.PersistentCacheStats()
	b.ReportMetric(100*ds.HitRate(), "disk-hit%")
}

// deltaSweep is a NoC-only sweep: cores, L2 capacity, and clustering are
// fixed while the fabric varies, so candidates differ only in their
// interconnect. This is the delta-re-evaluation shape the subsystem
// cache targets: every candidate after the first reuses the synthesized
// core and shared cache outright and only the fabric is rebuilt.
func deltaSweep(b *testing.B) *mcpat.DSEResult {
	b.Helper()
	res, err := mcpat.ExploreDesignSpace(
		mcpat.DSEParams{NM: 22, ClockHz: 2.5e9, Threads: 4},
		mcpat.DSESpace{
			Cores:       []int{16},
			L2PerCoreKB: []int{256},
			Fabrics: []mcpat.InterconnectKind{
				mcpat.Mesh, mcpat.Ring, mcpat.Bus, mcpat.Crossbar,
			},
			ClusterSizes: []int{1},
		},
		mcpat.DSEConstraints{MaxAreaMM2: 400, MaxTDP: 250},
		mcpat.MaxThroughput,
	)
	if err != nil {
		b.Fatal(err)
	}
	if res.Best == nil {
		b.Fatal("sweep found no feasible design")
	}
	return res
}

// BenchmarkDSEDeltaSweep measures the NoC-only sweep with the subsystem
// cache enabled (the default): cores and shared caches synthesize once
// and every later candidate is a pure-fabric rebuild plus a cheap Score
// pass over the reused subsystems.
func BenchmarkDSEDeltaSweep(b *testing.B) {
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	var evaluated int
	for i := 0; i < b.N; i++ {
		res := deltaSweep(b)
		evaluated = res.Evaluated
	}
	b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
	cs := mcpat.SubsysSynthCacheStats()
	b.ReportMetric(100*cs.HitRate(), "subsys-hit%")
}

// paretoSpace is the search-strategy comparison space: 256 points
// (8 cores x 8 L2 x {mesh with clusters, ring}), large enough that the
// pareto search's default budget lands at ~10% of the cross product,
// with a mesh cluster axis so the adaptive generator exercises every
// mutation kind.
func paretoSpace(b *testing.B, opts *mcpat.DSEOptions) *mcpat.DSEResult {
	b.Helper()
	res, err := mcpat.ExploreDesignSpaceContext(
		context.Background(),
		mcpat.DSEParams{NM: 22, ClockHz: 2.5e9, Threads: 4},
		mcpat.DSESpace{
			Cores:        []int{2, 4, 8, 12, 16, 24, 32, 64},
			L2PerCoreKB:  []int{64, 128, 256, 512, 1024, 2048, 4096, 8192},
			Fabrics:      []mcpat.InterconnectKind{mcpat.Mesh, mcpat.Ring},
			ClusterSizes: []int{1, 2, 4},
		},
		mcpat.DSEConstraints{MaxAreaMM2: 400, MaxTDP: 250},
		mcpat.MaxThroughput,
		opts,
	)
	if err != nil {
		b.Fatal(err)
	}
	if res.Best == nil {
		b.Fatal("sweep found no feasible design")
	}
	return res
}

// searchBench runs the strategy comparison at one cache setting and
// reports evaluations-per-op alongside throughput, so the pareto vs
// exhaustive rows in BENCH_dse.json carry both wall-time and the
// evaluation count the budget actually spent.
func searchBench(b *testing.B, opts *mcpat.DSEOptions, cold bool) {
	b.Helper()
	if cold {
		prevArr := mcpat.SetArraySynthCache(false)
		prevSub := mcpat.SetSubsysSynthCache(false)
		defer func() {
			mcpat.SetArraySynthCache(prevArr)
			mcpat.SetSubsysSynthCache(prevSub)
		}()
	}
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	b.ReportAllocs()
	b.ResetTimer()
	var evaluated, front int
	for i := 0; i < b.N; i++ {
		if cold {
			b.StopTimer()
			mcpat.ResetArraySynthCache()
			mcpat.ResetSubsysSynthCache()
			b.StartTimer()
		}
		res := paretoSpace(b, opts)
		evaluated = res.Evaluated
		front = len(res.Front)
	}
	b.ReportMetric(float64(evaluated), "evals/op")
	b.ReportMetric(float64(front), "front-size")
	b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
}

// BenchmarkDSEPareto runs the budgeted adaptive search (default budget:
// a tenth of the 126-point space) with warm caches. Compare with
// BenchmarkDSEParetoExhaustive for the strategy's evaluation saving at
// equal winners.
func BenchmarkDSEPareto(b *testing.B) {
	searchBench(b, &mcpat.DSEOptions{Search: mcpat.SearchPareto, Seed: 1}, false)
}

// BenchmarkDSEParetoCold is the adaptive search with both synthesis
// caches dropped every iteration: the first-run cost, where each saved
// evaluation pays off at full synthesis price.
func BenchmarkDSEParetoCold(b *testing.B) {
	searchBench(b, &mcpat.DSEOptions{Search: mcpat.SearchPareto, Seed: 1}, true)
}

// BenchmarkDSEParetoExhaustive sweeps the same space exhaustively with
// warm caches — the wall-time baseline the pareto rows are read against.
func BenchmarkDSEParetoExhaustive(b *testing.B) {
	searchBench(b, nil, false)
}

// BenchmarkDSEParetoExhaustiveCold is the exhaustive sweep at full
// synthesis price, the worst case the adaptive search exists to avoid.
func BenchmarkDSEParetoExhaustiveCold(b *testing.B) {
	searchBench(b, nil, true)
}

// BenchmarkDSEDeltaSweepArrayOnly is the pre-subsystem-cache baseline
// for the same NoC-only sweep: the array cache stays on (the prior
// optimization level) but every candidate still re-assembles cores and
// caches from their arrays. The gap to BenchmarkDSEDeltaSweep is the
// subsystem layer's contribution.
func BenchmarkDSEDeltaSweepArrayOnly(b *testing.B) {
	prev := mcpat.SetSubsysSynthCache(false)
	defer mcpat.SetSubsysSynthCache(prev)
	mcpat.ResetArraySynthCache()
	mcpat.ResetSubsysSynthCache()
	var evaluated int
	for i := 0; i < b.N; i++ {
		res := deltaSweep(b)
		evaluated = res.Evaluated
	}
	b.ReportMetric(float64(evaluated)*float64(b.N)/b.Elapsed().Seconds(), "candidates/s")
}
