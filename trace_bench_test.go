package mcpat_test

// Trace-path benchmarks: measure the per-interval cost of the time-series
// power engine (internal/trace), the workload the synthesize/score split
// was built for. BenchmarkTraceScore is the steady-state hot path a long
// stats.txt replay pays per dump: one arena-backed Score pass over the
// already-synthesized chip. The Heap variant drops the arena (every
// report Item allocated individually) and the FullEvaluate variant
// re-synthesizes the chip every interval — the naive pipeline a user
// would write without the engine. BENCH_dse.json's trace_path section
// records the reference numbers; the allocs/op gap between Score and
// FullEvaluate is the acceptance metric.

import (
	"context"
	"os"
	"testing"

	"mcpat"
)

// traceBenchFixture maps the checked-in gem5 example pair once and
// returns the synthesized engine plus its intervals.
func traceBenchFixture(b *testing.B) (*mcpat.TraceEngine, []mcpat.TraceInterval, mcpat.Config) {
	b.Helper()
	cfgF, err := os.Open("examples/gem5-trace/config.json")
	if err != nil {
		b.Fatal(err)
	}
	defer cfgF.Close()
	statsF, err := os.Open("examples/gem5-trace/stats.txt")
	if err != nil {
		b.Fatal(err)
	}
	defer statsF.Close()
	eng, ivs, res, err := mcpat.TraceFromGem5(cfgF, statsF)
	if err != nil {
		b.Fatal(err)
	}
	if len(ivs) < 2 {
		b.Fatalf("fixture has %d intervals, want >= 2", len(ivs))
	}
	return eng, ivs, res.Config
}

// BenchmarkTraceScore is the engine's hot path: one arena-backed Score
// pass per interval against the chip synthesized once up front. This is
// the per-dump cost of replaying a long stats.txt stream.
func BenchmarkTraceScore(b *testing.B) {
	eng, ivs, _ := traceBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv := ivs[i%len(ivs)]
		if _, err := eng.Score(i, 0, iv); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "intervals/s")
}

// BenchmarkTraceScoreHeap scores the same intervals through the plain
// heap report path (no arena): the chip is still synthesized once, but
// every report Item is an individual allocation. The gap to
// BenchmarkTraceScore is the arena's contribution alone.
func BenchmarkTraceScoreHeap(b *testing.B) {
	eng, ivs, _ := traceBenchFixture(b)
	proc := eng.Processor()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv := ivs[i%len(ivs)]
		if _, err := proc.ReportE(iv.Stats); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "intervals/s")
}

// BenchmarkTraceFullEvaluate is the naive per-interval pipeline the
// engine replaces: re-synthesize the chip for every dump, then report.
// Synthesis caches stay at their defaults (warm after the first
// iteration), so this is the BEST case for the naive loop — the engine
// still wins on both time and allocations because a warm chip.New must
// re-assemble and re-validate the whole hierarchy per call.
func BenchmarkTraceFullEvaluate(b *testing.B) {
	_, ivs, cfg := traceBenchFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iv := ivs[i%len(ivs)]
		p, err := mcpat.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p.Report(iv.Stats)
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "intervals/s")
}

// BenchmarkTraceRun measures a whole Run over the example's three
// intervals — header, per-interval scoring, and summary folding — the
// unit of work one /v1/trace request or one mcpat-trace invocation pays
// after synthesis.
func BenchmarkTraceRun(b *testing.B) {
	eng, ivs, _ := traceBenchFixture(b)
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(ctx, ivs, nil); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N*len(ivs))/b.Elapsed().Seconds(), "intervals/s")
}

// BenchmarkTraceThermalLoop is the closed-loop hot path: the same
// arena-backed Score per interval, plus the governor decision, the
// Score-time temperature/DVFS retune, and one transient thermal-model
// step over the floorplan-derived blocks. The acceptance bound for the
// thermal/DVFS refactor is allocs/op within +2 of BenchmarkTraceScore
// (BENCH_dse.json, thermal_loop section).
func BenchmarkTraceThermalLoop(b *testing.B) {
	eng, ivs, _ := traceBenchFixture(b)
	if err := eng.EnableLoop(mcpat.TraceLoopOptions{
		Package:      mcpat.PackageSpec{RthetaJA: 0.8, MaxTjK: 360, TimeConstS: 5e-4},
		UseFloorplan: true,
		Governor:     mcpat.ThermalHeadroomGovernor{},
	}); err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i += len(ivs) {
		tr, err := eng.Run(ctx, ivs, nil)
		if err != nil {
			b.Fatal(err)
		}
		n += len(tr.Samples)
	}
	b.ReportMetric(float64(n)/b.Elapsed().Seconds(), "intervals/s")
}
